package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture loads one testdata/src package for a unit test.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	return pkg
}

// TestFileIgnoreSuppressesWholeFile checks that one
// lint:file-ignore <rule> <reason> comment drops every finding of that
// rule in its file — and only in its file.
func TestFileIgnoreSuppressesWholeFile(t *testing.T) {
	pkg := loadFixture(t, "ignores")
	for _, d := range Run(pkg, []*Analyzer{FloatCmp}) {
		if d.Rule == "floatcmp" && filepath.Base(d.Pos.Filename) == "ignores.go" {
			t.Errorf("file-ignored finding survived: %s", d)
		}
	}
}

// TestMalformedIgnoreIsAFinding pins the audit rule: an ignore with no
// rule or no reason suppresses nothing and is itself reported under the
// lintignore meta-rule, whatever analyzer subset runs.
func TestMalformedIgnoreIsAFinding(t *testing.T) {
	pkg := loadFixture(t, "ignores")
	diags := Run(pkg, []*Analyzer{FloatCmp})

	var bad, float []Diagnostic
	for _, d := range diags {
		switch d.Rule {
		case LintIgnoreRule:
			bad = append(bad, d)
		case "floatcmp":
			float = append(float, d)
		default:
			t.Errorf("unexpected rule %q: %s", d.Rule, d)
		}
	}
	// bad.go holds three malformed ignores: a bare lint:ignore, a
	// lint:ignore with a rule but no reason, and a lint:file-ignore with
	// a rule but no reason.
	if len(bad) != 3 {
		t.Errorf("got %d lintignore findings, want 3:\n%s", len(bad), formatDiags(bad))
	}
	for _, d := range bad {
		if filepath.Base(d.Pos.Filename) != "bad.go" {
			t.Errorf("lintignore finding outside bad.go: %s", d)
		}
		if !strings.Contains(d.Message, "needs a rule and a reason") {
			t.Errorf("lintignore message does not explain the fix: %s", d)
		}
	}
	// The reason-less line ignore in bad.go must not have suppressed the
	// float comparison it sits above; the valid wildcard ignore must
	// have suppressed its own.
	if len(float) != 1 {
		t.Errorf("got %d floatcmp findings in bad.go, want 1 (malformed ignore must not suppress):\n%s",
			len(float), formatDiags(float))
	}
}

// TestWildcardIgnoreSuppressesAllRules checks the "*" rule: a valid
// wildcard line ignore drops every rule at that site.
func TestWildcardIgnoreSuppressesAllRules(t *testing.T) {
	pkg := loadFixture(t, "ignores")
	for _, d := range Run(pkg, []*Analyzer{FloatCmp}) {
		if d.Rule == "floatcmp" && d.Pos.Line >= 14 && filepath.Base(d.Pos.Filename) == "bad.go" {
			t.Errorf("wildcard-ignored finding survived: %s", d)
		}
	}
}

func formatDiags(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}
