package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// A Package is one directory of Go source, parsed and type-checked.
type Package struct {
	// Path is the import path (or the directory path for packages
	// outside the module, e.g. testdata fixtures).
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// hotTypes names the //repro:hotpath-annotated types declared in
	// this package; loader points back at the Loader that produced the
	// package so annotations of memoized dependencies are queryable.
	hotTypes map[string]bool
	loader   *Loader
}

// IsHotpathType reports whether tn names a //repro:hotpath-annotated
// type — declared in this package or in any dependency the loader has
// already type-checked (dependencies are always loaded before their
// importers, so the memo is complete by the time analyzers run).
func (p *Package) IsHotpathType(tn *types.TypeName) bool {
	if tn == nil || tn.Pkg() == nil {
		return false
	}
	if tn.Pkg() == p.Types {
		return p.hotTypes[tn.Name()]
	}
	if p.loader != nil {
		if dep, ok := p.loader.pkgs[tn.Pkg().Path()]; ok {
			return dep.hotTypes[tn.Name()]
		}
	}
	return false
}

// A Loader parses and type-checks packages rooted at one module. It
// resolves intra-module import paths itself and delegates everything
// else (the standard library) to the stdlib source importer, so it
// works fully offline. Loaded packages are memoized, so shared
// dependencies are checked once.
type Loader struct {
	// ModulePath is the module identifier from go.mod ("" when the
	// loader was rooted outside any module).
	ModulePath string
	// ModuleDir is the directory holding go.mod.
	ModuleDir string
	// IncludeTests adds in-package _test.go files to each loaded
	// package. External test packages (package foo_test) are never
	// loaded.
	IncludeTests bool

	Fset *token.FileSet

	std  types.ImporterFrom
	pkgs map[string]*Package
	busy map[string]bool
}

var moduleLineRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// NewLoader returns a loader rooted at the module containing dir. If no
// go.mod is found above dir, the loader still works but resolves only
// standard-library imports.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Fset: token.NewFileSet(),
		pkgs: make(map[string]*Package),
		busy: make(map[string]bool),
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			m := moduleLineRE.FindSubmatch(data)
			if m == nil {
				return nil, fmt.Errorf("%s/go.mod: no module line", d)
			}
			l.ModulePath = string(m[1])
			l.ModuleDir = d
			break
		}
		parent := filepath.Dir(d)
		if parent == d {
			break // no module; stdlib-only resolution
		}
		d = parent
	}
	l.std = importer.ForCompiler(l.Fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths are
// loaded from the module tree, everything else from GOROOT source.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if l.ModulePath != "" && (path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")) {
		sub := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.Load(filepath.Join(l.ModuleDir, filepath.FromSlash(sub)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, 0)
}

// pathFor maps an absolute directory to its import path inside the
// module, falling back to the directory itself.
func (l *Loader) pathFor(dir string) string {
	if l.ModulePath == "" {
		return dir
	}
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return dir
	}
	if rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// Load parses and type-checks the package in dir (memoized).
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := l.pathFor(abs)
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	bp, err := build.ImportDir(abs, 0)
	if err != nil {
		return nil, err
	}
	names := append([]string(nil), bp.GoFiles...)
	if l.IncludeTests {
		names = append(names, bp.TestGoFiles...)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no Go files", abs)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var typeErrs []error
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", path, typeErrs[0])
	}
	pkg := &Package{
		Path:     path,
		Dir:      abs,
		Fset:     l.Fset,
		Files:    files,
		Types:    tpkg,
		Info:     info,
		hotTypes: hotpathTypeNames(files),
		loader:   l,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Dirs expands command-line package patterns into source directories.
// A pattern ending in "/..." (or the bare "...") is walked recursively;
// anything else names a single directory. Walks skip testdata, vendor,
// hidden, and underscore-prefixed directories.
func Dirs(patterns []string) ([]string, error) {
	var out []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	for _, pat := range patterns {
		root, recursive := pat, false
		if pat == "..." {
			root, recursive = ".", true
		} else if strings.HasSuffix(pat, "/...") {
			root, recursive = strings.TrimSuffix(pat, "/..."), true
			if root == "" {
				root = "/"
			}
		}
		if !recursive {
			add(filepath.Clean(root))
			continue
		}
		err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			ents, err := os.ReadDir(p)
			if err != nil {
				return err
			}
			for _, e := range ents {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
					add(filepath.Clean(p))
					break
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
