package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// HotAlloc guards the zero-allocation discipline of the scoring
// kernels: inside every //repro:hotpath function (and every method of a
// //repro:hotpath type) it flags the AST-visible allocation sources —
//
//   - the allocating builtins: append (growth reallocates), make, new;
//   - fmt calls and the allocating strconv formatters (Itoa,
//     Format*, Quote*): formatting builds strings on the heap, and on a
//     per-candidate path even an error-branch Sprintf shows up in
//     allocs/op;
//   - map and slice composite literals;
//   - defer inside a loop (each iteration pushes a heap-allocated
//     defer record; a function-scope defer is open-coded and free);
//   - closures that capture enclosing variables (the capture forces a
//     heap-allocated closure object whenever the func value escapes);
//   - interface boxing at call sites: passing a concrete
//     non-pointer-shaped value where an interface parameter is expected
//     copies it onto the heap.
//
// The rule is deliberately conservative: some flagged sites are proven
// stack-allocated by the compiler. Those earn a //lint:ignore with the
// reasoning, and the cmd/lint -escapes gate (compiler escape analysis
// against ESCAPES.json) keeps the proof honest per commit.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags allocation sources (append/make/new, fmt/strconv, map/slice literals, loop defers, capturing closures, interface boxing) inside //repro:hotpath functions",
	Run:  runHotAlloc,
}

// strconvFormatters are the strconv functions that return freshly
// allocated strings. The Append* family (caller-managed buffers) and
// the parsers are exempt; FormatBool returns interned constants.
var strconvFormatters = map[string]bool{
	"Itoa":             true,
	"FormatFloat":      true,
	"FormatInt":        true,
	"FormatUint":       true,
	"FormatComplex":    true,
	"Quote":            true,
	"QuoteRune":        true,
	"QuoteToASCII":     true,
	"QuoteRuneToASCII": true,
}

func runHotAlloc(p *Pass) {
	for _, hf := range HotpathFuncs(p.Fset, p.Files) {
		if hf.Decl.Body == nil {
			continue
		}
		checkHotAllocBody(p, hf.Name, hf.Decl)
		checkLoopDefers(p, hf.Decl.Body, false)
	}
}

// checkHotAllocBody walks one annotated declaration, including nested
// closures (their bodies run on the same hot path).
func checkHotAllocBody(p *Pass, name string, decl *ast.FuncDecl) {
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			checkHotCall(p, name, e)
		case *ast.CompositeLit:
			checkHotCompositeLit(p, name, e)
		case *ast.FuncLit:
			checkClosureCaptures(p, name, decl, e)
		}
		return true
	})
}

// checkHotCall flags at most one finding per call, in precedence order:
// allocating builtin, fmt/strconv formatting, interface boxing of an
// argument.
func checkHotCall(p *Pass, name string, call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				p.Reportf(call.Pos(), "append in hot path %s allocates when the slice grows; preallocate outside the hot path", name)
				return
			case "make":
				p.Reportf(call.Pos(), "make in hot path %s allocates; hoist the buffer out of the per-candidate loop", name)
				return
			case "new":
				p.Reportf(call.Pos(), "new in hot path %s allocates; use a stack value", name)
				return
			}
		}
	}
	if obj := calleeOf(p.Info, call); obj != nil && obj.Pkg() != nil {
		switch obj.Pkg().Path() {
		case "fmt":
			p.Reportf(call.Pos(), "fmt.%s in hot path %s formats and allocates; move formatting off the hot path or predeclare the value", obj.Name(), name)
			return
		case "strconv":
			if strconvFormatters[obj.Name()] {
				p.Reportf(call.Pos(), "strconv.%s in hot path %s allocates a string; use the Append* form with a reused buffer", obj.Name(), name)
				return
			}
		}
	}
	checkHotBoxing(p, name, call)
}

// checkHotBoxing flags call arguments whose concrete, non-pointer-shaped
// value is passed where an interface is expected: the conversion copies
// the value to the heap. Pointer-shaped values (pointers, maps, chans,
// funcs) ride in the interface word itself — boxing a cursor pointer
// once per worker block is the sanctioned pattern — and constants are
// materialized in static data by the compiler.
func checkHotBoxing(p *Pass, name string, call *ast.CallExpr) {
	if isConversion(p.Info, call) {
		tv := p.Info.Types[ast.Unparen(call.Fun)]
		if tv.Type == nil || !types.IsInterface(tv.Type) || len(call.Args) != 1 {
			return
		}
		if at, ok := boxableArg(p, call.Args[0]); ok {
			p.Reportf(call.Args[0].Pos(), "converting %s to %s in hot path %s boxes it on the heap; convert a pointer instead", at, tv.Type, name)
		}
		return
	}
	ftv, ok := p.Info.Types[call.Fun]
	if !ok || ftv.Type == nil {
		return
	}
	sig, ok := ftv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			last := sig.Params().At(np - 1).Type()
			if call.Ellipsis.IsValid() {
				pt = last // arg is the slice itself
			} else if sl, ok := last.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		if at, ok := boxableArg(p, arg); ok {
			p.Reportf(arg.Pos(), "passing %s as %s in hot path %s boxes it on the heap; pass a pointer or hoist the conversion", at, pt, name)
		}
	}
}

// boxableArg reports whether converting arg to an interface allocates:
// its static type is concrete and not pointer-shaped, and it is not a
// constant (constants box into static data).
func boxableArg(p *Pass, arg ast.Expr) (types.Type, bool) {
	tv, ok := p.Info.Types[arg]
	if !ok || tv.Type == nil || tv.Value != nil || tv.IsNil() {
		return nil, false
	}
	t := tv.Type
	if types.IsInterface(t.Underlying()) {
		return nil, false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return nil, false
	case *types.Basic:
		if t.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return nil, false
		}
	}
	return t, true
}

// checkHotCompositeLit flags map and slice literals (each evaluation
// allocates the backing store). Arrays and structs stay on the stack
// unless they escape, which the -escapes gate tracks.
func checkHotCompositeLit(p *Pass, name string, cl *ast.CompositeLit) {
	tv, ok := p.Info.Types[cl]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		p.Reportf(cl.Pos(), "slice literal in hot path %s allocates its backing array; hoist it to package level or the caller", name)
	case *types.Map:
		p.Reportf(cl.Pos(), "map literal in hot path %s allocates; hoist it to package level or the caller", name)
	}
}

// checkClosureCaptures flags a func literal that references variables
// declared in the enclosing function: the captures force a closure
// object that is heap-allocated whenever the func value escapes (and
// most scoring-path consumers, e.g. sort.Search pre-inlining, are
// opaque to that proof).
func checkClosureCaptures(p *Pass, name string, decl *ast.FuncDecl, lit *ast.FuncLit) {
	captured := make(map[string]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured: declared inside the enclosing declaration but
		// outside the literal. Package-level state is not a capture.
		if v.Pos() >= decl.Pos() && v.Pos() < lit.Pos() {
			captured[v.Name()] = true
		}
		return true
	})
	if len(captured) == 0 {
		return
	}
	names := make([]string, 0, len(captured))
	for n := range captured {
		names = append(names, n)
	}
	sort.Strings(names)
	p.Reportf(lit.Pos(), "closure in hot path %s captures %s; a capturing closure allocates when it escapes — pass state as arguments or hand-roll the loop", name, strings.Join(names, ", "))
}

// checkLoopDefers reports defer statements lexically inside a loop of
// the hot-path function. Closure bodies restart the scan with the loop
// context cleared (a defer inside a closure inside a loop fires at the
// closure's return, not per iteration — but its own loops count).
func checkLoopDefers(p *Pass, n ast.Node, inLoop bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch s := m.(type) {
		case *ast.ForStmt:
			if s.Init != nil {
				checkLoopDefers(p, s.Init, inLoop)
			}
			checkLoopDefers(p, s.Body, true)
			return false
		case *ast.RangeStmt:
			checkLoopDefers(p, s.Body, true)
			return false
		case *ast.FuncLit:
			checkLoopDefers(p, s.Body, false)
			return false
		case *ast.DeferStmt:
			if inLoop {
				p.Reportf(s.Pos(), "defer inside a loop allocates a defer record per iteration; restructure so the defer is function-scoped")
			}
		}
		return true
	})
}
