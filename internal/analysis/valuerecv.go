package analysis

import (
	"go/ast"
	"sort"
	"strings"
)

// ValueRecv enforces receiver-kind consistency: a type whose method set
// mixes pointer and value receivers invites accidental state copies —
// calling the value-receiver method on the shared instance snapshots
// it, so mutations, cached fields, or lock state silently diverge. The
// concurrency-safe types the plan service and repro.Planner share
// between goroutines (and the //repro:hotpath cursor types, whose copy
// cost is the point) must pick one kind; the rule flags each
// value-receiver method of a type that also declares pointer-receiver
// methods.
//
// Types with uniformly value receivers (immutable spec/model values
// like core.CostModel) and uniformly pointer receivers are untouched.
var ValueRecv = &Analyzer{
	Name: "valuerecv",
	Doc:  "flags value-receiver methods on types that also declare pointer-receiver methods",
	Run:  runValueRecv,
}

func runValueRecv(p *Pass) {
	type methods struct {
		pointer []string
		value   []*ast.FuncDecl
	}
	byType := make(map[string]*methods)
	var order []string
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			base := receiverBaseName(fd)
			if base == "" {
				continue
			}
			m := byType[base]
			if m == nil {
				m = &methods{}
				byType[base] = m
				order = append(order, base)
			}
			if _, ptr := fd.Recv.List[0].Type.(*ast.StarExpr); ptr {
				m.pointer = append(m.pointer, fd.Name.Name)
			} else {
				m.value = append(m.value, fd)
			}
		}
	}
	sort.Strings(order)
	for _, base := range order {
		m := byType[base]
		if len(m.pointer) == 0 || len(m.value) == 0 {
			continue
		}
		ptr := append([]string(nil), m.pointer...)
		sort.Strings(ptr)
		for _, fd := range m.value {
			p.Reportf(fd.Recv.List[0].Type.Pos(),
				"method %s.%s uses a value receiver but %s has pointer-receiver methods (%s); each call copies the state — make the receiver *%s",
				base, fd.Name.Name, base, strings.Join(ptr, ", "), base)
		}
	}
}
