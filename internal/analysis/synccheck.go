package analysis

import (
	"go/ast"
	"go/types"
)

// SyncCheck guards the concurrency substrate that the parallel
// Monte-Carlo engine rides on. It flags
//
//   - function parameters, receivers, and results that pass a type
//     containing sync.Mutex / WaitGroup / Once / … by value (the copy
//     has its own lock state, so the original is silently unguarded),
//   - assignments and range clauses that copy such a value out of an
//     existing variable (fresh composite literals are fine), and
//   - "go func() { … }" literals that capture a loop variable instead
//     of taking it as an argument — per-iteration loop variables make
//     this safe from Go 1.22, but the explicit-argument form is the
//     house style because it also pins one RNG stream per worker.
var SyncCheck = &Analyzer{
	Name: "synccheck",
	Doc:  "flags by-value copies of lock-bearing types and loop-variable capture in go statements",
	Run:  runSyncCheck,
}

func runSyncCheck(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.FuncDecl:
				if e.Recv != nil {
					checkFieldList(p, e.Recv, "receiver")
				}
				// Results are not checked: returning a fresh
				// lock-bearing value from a constructor is legal.
				checkFieldList(p, e.Type.Params, "parameter")
			case *ast.FuncLit:
				checkFieldList(p, e.Type.Params, "parameter")
			case *ast.AssignStmt:
				for i, rhs := range e.Rhs {
					// "_ = x" discards the copy; it exists to silence
					// unused-variable errors, not to smuggle a lock.
					if len(e.Lhs) == len(e.Rhs) {
						if id, ok := e.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							continue
						}
					}
					checkLockCopyExpr(p, rhs)
				}
			case *ast.ValueSpec:
				for _, v := range e.Values {
					checkLockCopyExpr(p, v)
				}
			case *ast.RangeStmt:
				if e.Value != nil {
					if id, ok := e.Value.(*ast.Ident); ok && id.Name != "_" {
						if obj := p.Info.Defs[id]; obj != nil && containsLock(obj.Type()) {
							p.Reportf(e.Value.Pos(),
								"range value copies %s which contains a sync primitive; range over indices or pointers", obj.Type())
						}
					}
				}
				checkGoLoopCapture(p, loopVarObjs(p, e), e.Body)
			case *ast.ForStmt:
				checkGoLoopCapture(p, forInitObjs(p, e), e.Body)
			}
			return true
		})
	}
}

// checkFieldList reports fields whose by-value type carries a lock.
func checkFieldList(p *Pass, fl *ast.FieldList, kind string) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		tv, ok := p.Info.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if containsLock(tv.Type) {
			p.Reportf(field.Type.Pos(),
				"%s passes %s by value, copying its sync primitive; use a pointer", kind, tv.Type)
		}
	}
}

// checkLockCopyExpr flags reading a lock-bearing value out of an
// existing variable (identifier, field, index, or dereference). Fresh
// values — composite literals, function-call results — are legal
// because no goroutine can hold the new copy's lock yet.
func checkLockCopyExpr(p *Pass, e ast.Expr) {
	e = ast.Unparen(e)
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil {
		return
	}
	if containsLock(tv.Type) {
		p.Reportf(e.Pos(),
			"assignment copies %s which contains a sync primitive; share a pointer instead", tv.Type)
	}
}

// loopVarObjs returns the objects bound by a range statement's key and
// value.
func loopVarObjs(p *Pass, rs *ast.RangeStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok {
			if obj := p.Info.Defs[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// forInitObjs returns the objects defined in a for statement's init
// clause (for i := 0; …).
func forInitObjs(p *Pass, fs *ast.ForStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if as, ok := fs.Init.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := p.Info.Defs[id]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	return out
}

// checkGoLoopCapture flags "go func() { … uses i … }()" inside the
// loop that declares i, when i is not passed as a call argument.
func checkGoLoopCapture(p *Pass, loopVars map[types.Object]bool, body *ast.BlockStmt) {
	if len(loopVars) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := p.Info.Uses[id]; obj != nil && loopVars[obj] {
				p.Reportf(id.Pos(),
					"goroutine captures loop variable %s; pass it as an argument (go func(%s …) { … }(%s))", id.Name, id.Name, id.Name)
				return false
			}
			return true
		})
		return true
	})
}
