package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// isFloat reports whether t's underlying type is a floating-point
// basic type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// calleeOf resolves the object a call expression invokes, looking
// through parentheses. It returns nil for type conversions, builtins
// with no object, and calls of computed function values.
func calleeOf(info *types.Info, call *ast.CallExpr) types.Object {
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.Ident:
		return info.Uses[f]
	case *ast.SelectorExpr:
		if sel := info.Selections[f]; sel != nil {
			return sel.Obj()
		}
		return info.Uses[f.Sel]
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := f.X.(*ast.Ident); ok {
			return info.Uses[id]
		}
	}
	return nil
}

// isPkgFunc reports whether obj is the package-level function pkgPath.name,
// where pkgPath matches either exactly or as an "…/suffix" (so the rule
// works for both the real module path and testdata fixture paths).
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	if obj == nil || obj.Pkg() == nil || obj.Name() != name {
		return false
	}
	return pathMatches(obj.Pkg().Path(), pkgPath)
}

// pathMatches reports whether got is path itself or ends in "/"+path.
func pathMatches(got, path string) bool {
	return got == path || strings.HasSuffix(got, "/"+path)
}

// isConversion reports whether the call expression is a type
// conversion rather than a function call.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[ast.Unparen(call.Fun)]
	return ok && tv.IsType()
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// lastResultIsError reports whether the call yields an error as its
// only or final result.
func lastResultIsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && types.Identical(t.At(t.Len()-1).Type(), errorType)
	default:
		return types.Identical(t, errorType)
	}
}

// lockTypeNames are the sync types that must never be copied once used.
var lockTypeNames = map[string]bool{
	"Mutex":     true,
	"RWMutex":   true,
	"WaitGroup": true,
	"Once":      true,
	"Cond":      true,
	"Pool":      true,
	"Map":       true,
}

// containsLock reports whether a value of type t holds sync state by
// value (directly, or inside a struct field or array element). Pointers
// and reference types do not propagate: sharing them is the fix.
func containsLock(t types.Type) bool {
	return containsLockRec(t, make(map[types.Type]bool))
}

func containsLockRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockTypeNames[obj.Name()] {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockRec(u.Elem(), seen)
	}
	return false
}
