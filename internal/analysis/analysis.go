// Package analysis is a small, dependency-free static-analysis
// framework for this repository. It loads and type-checks packages with
// the standard library's go/parser and go/types (no golang.org/x/tools;
// the module is built offline) and runs a suite of repo-specific
// analyzers that guard the invariants the paper reproduction depends
// on: bit-for-bit numerical determinism, seeded RNG discipline,
// deterministic output ordering, checked errors on output paths, and
// concurrency hygiene in the parallel Monte-Carlo substrate.
//
// Diagnostics are reported as "file:line:col: [rule] message". A
// finding can be suppressed by placing a
//
//	//lint:ignore <rule> <reason>
//
// comment on the offending line or on the line directly above it, or
// for a whole file (generated code, fixtures) with
//
//	//lint:file-ignore <rule> <reason>
//
// anywhere in the file. The reason is mandatory so suppressions stay
// auditable: an ignore without one suppresses nothing and is itself
// reported under the always-on lintignore meta-rule.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named rule. Run inspects the package held by the
// Pass and reports findings through Pass.Reportf.
type Analyzer struct {
	// Name is the rule identifier used in diagnostics and in
	// lint:ignore comments.
	Name string
	// Doc is a one-line description of what the rule enforces.
	Doc string
	// Run executes the rule against one type-checked package.
	Run func(*Pass)
}

// A Diagnostic is a single finding at a resolved source position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Package is the loaded package, for queries that reach beyond the
	// type information (e.g. //repro:hotpath annotations of
	// dependencies).
	Package *Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos under the running analyzer's rule
// name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in deterministic order.
func All() []*Analyzer {
	return []*Analyzer{
		FloatCmp,
		RNGDiscipline,
		MapOrder,
		ErrCheck,
		SyncCheck,
		HotAlloc,
		IfaceEscape,
		MutexCopy,
		ValueRecv,
	}
}

// Run executes every analyzer against the package and returns the
// surviving diagnostics sorted by position. Findings suppressed by
// lint:ignore / lint:file-ignore comments are dropped; malformed
// ignores (no rule or no reason) are reported under the lintignore
// meta-rule regardless of which analyzers run.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Package:  pkg,
			diags:    &diags,
		}
		a.Run(pass)
	}
	diags = filterIgnored(pkg, diags)
	seen := make(map[Diagnostic]bool, len(diags))
	uniq := diags[:0]
	for _, d := range diags {
		if !seen[d] {
			seen[d] = true
			uniq = append(uniq, d)
		}
	}
	diags = uniq
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags
}

// ignoreKey identifies one suppressed (file, line, rule) site.
type ignoreKey struct {
	file string
	line int
	rule string
}

// fileIgnoreKey identifies one file-wide suppressed rule.
type fileIgnoreKey struct {
	file string
	rule string
}

// LintIgnoreRule is the meta-rule under which malformed suppression
// comments are reported. It always runs: an unauditable ignore must
// never pass silently, whatever -rules subset was selected.
const LintIgnoreRule = "lintignore"

// ignoreSet is the parsed suppression state of one package, plus the
// diagnostics its malformed ignores earn.
type ignoreSet struct {
	line map[ignoreKey]bool
	file map[fileIgnoreKey]bool
	bad  []Diagnostic
}

// collectIgnores parses every "//lint:ignore <rule> <reason>" and
// "//lint:file-ignore <rule> <reason>" comment. An ignore with no rule
// or no reason suppresses nothing and is reported under lintignore.
func collectIgnores(pkg *Package) ignoreSet {
	set := ignoreSet{
		line: make(map[ignoreKey]bool),
		file: make(map[fileIgnoreKey]bool),
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Like //go: directives, the marker must follow "//" with
				// no space — "// lint:ignore ..." is prose about the
				// directive, not a directive.
				if !strings.HasPrefix(c.Text, "//lint:") {
					continue
				}
				text := strings.TrimPrefix(c.Text, "//")
				var directive string
				switch {
				case text == "lint:ignore" || strings.HasPrefix(text, "lint:ignore "):
					directive = "lint:ignore"
				case text == "lint:file-ignore" || strings.HasPrefix(text, "lint:file-ignore "):
					directive = "lint:file-ignore"
				default:
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, directive))
				if len(fields) < 2 {
					set.bad = append(set.bad, Diagnostic{
						Pos:  pos,
						Rule: LintIgnoreRule,
						Message: fmt.Sprintf("%s needs a rule and a reason (//%s <rule> <reason>); a bare ignore suppresses nothing",
							directive, directive),
					})
					continue
				}
				if directive == "lint:file-ignore" {
					set.file[fileIgnoreKey{pos.Filename, fields[0]}] = true
				} else {
					set.line[ignoreKey{pos.Filename, pos.Line, fields[0]}] = true
				}
			}
		}
	}
	return set
}

// filterIgnored drops diagnostics covered by a line ignore on the same
// line or the line immediately above, or by a file ignore anywhere in
// the diagnostic's file, and appends one finding per malformed ignore.
// The wildcard rule "*" suppresses every rule at that site.
func filterIgnored(pkg *Package, diags []Diagnostic) []Diagnostic {
	set := collectIgnores(pkg)
	kept := diags[:0]
	for _, d := range diags {
		if set.line[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Rule}] ||
			set.line[ignoreKey{d.Pos.Filename, d.Pos.Line - 1, d.Rule}] ||
			set.line[ignoreKey{d.Pos.Filename, d.Pos.Line, "*"}] ||
			set.line[ignoreKey{d.Pos.Filename, d.Pos.Line - 1, "*"}] ||
			set.file[fileIgnoreKey{d.Pos.Filename, d.Rule}] ||
			set.file[fileIgnoreKey{d.Pos.Filename, "*"}] {
			continue
		}
		kept = append(kept, d)
	}
	return append(kept, set.bad...)
}
