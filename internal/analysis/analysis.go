// Package analysis is a small, dependency-free static-analysis
// framework for this repository. It loads and type-checks packages with
// the standard library's go/parser and go/types (no golang.org/x/tools;
// the module is built offline) and runs a suite of repo-specific
// analyzers that guard the invariants the paper reproduction depends
// on: bit-for-bit numerical determinism, seeded RNG discipline,
// deterministic output ordering, checked errors on output paths, and
// concurrency hygiene in the parallel Monte-Carlo substrate.
//
// Diagnostics are reported as "file:line:col: [rule] message". A
// finding can be suppressed by placing a
//
//	//lint:ignore <rule> <reason>
//
// comment on the offending line or on the line directly above it; the
// reason is mandatory so suppressions stay auditable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named rule. Run inspects the package held by the
// Pass and reports findings through Pass.Reportf.
type Analyzer struct {
	// Name is the rule identifier used in diagnostics and in
	// lint:ignore comments.
	Name string
	// Doc is a one-line description of what the rule enforces.
	Doc string
	// Run executes the rule against one type-checked package.
	Run func(*Pass)
}

// A Diagnostic is a single finding at a resolved source position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos under the running analyzer's rule
// name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in deterministic order.
func All() []*Analyzer {
	return []*Analyzer{
		FloatCmp,
		RNGDiscipline,
		MapOrder,
		ErrCheck,
		SyncCheck,
	}
}

// Run executes every analyzer against the package and returns the
// surviving diagnostics sorted by position. Findings suppressed by
// lint:ignore comments are dropped.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		a.Run(pass)
	}
	diags = filterIgnored(pkg, diags)
	seen := make(map[Diagnostic]bool, len(diags))
	uniq := diags[:0]
	for _, d := range diags {
		if !seen[d] {
			seen[d] = true
			uniq = append(uniq, d)
		}
	}
	diags = uniq
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags
}

// ignoreKey identifies one suppressed (file, line, rule) site.
type ignoreKey struct {
	file string
	line int
	rule string
}

// filterIgnored drops diagnostics covered by a "//lint:ignore <rule>
// <reason>" comment on the same line or the line immediately above.
// The wildcard rule "*" suppresses every rule at that site.
func filterIgnored(pkg *Package, diags []Diagnostic) []Diagnostic {
	ignored := make(map[ignoreKey]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:ignore ") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore "))
				if len(fields) < 2 {
					// No reason given: the suppression is invalid and
					// intentionally has no effect.
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ignored[ignoreKey{pos.Filename, pos.Line, fields[0]}] = true
			}
		}
	}
	if len(ignored) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if ignored[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Rule}] ||
			ignored[ignoreKey{d.Pos.Filename, d.Pos.Line - 1, d.Rule}] ||
			ignored[ignoreKey{d.Pos.Filename, d.Pos.Line, "*"}] ||
			ignored[ignoreKey{d.Pos.Filename, d.Pos.Line - 1, "*"}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
