package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// The //repro:hotpath directive marks a function — or a type, whose
// methods then inherit the mark — as a hot path: code executed once per
// candidate / per sample inside the paper's scoring loops, which must
// stay allocation-free. The directive is written as the last line of
// the doc comment:
//
//	// CostBudget is Cost with an admissible early abort ...
//	//
//	//repro:hotpath
//	func (c *CostCursor) CostBudget(t1, budget float64) ...
//
// Two enforcement layers consume it: the hotalloc/ifaceescape analyzers
// (AST-level allocation sources) and the cmd/lint -escapes gate
// (compiler escape-analysis diagnostics diffed against ESCAPES.json).
const hotpathDirective = "repro:hotpath"

// A HotpathFunc is one function or method covered by a //repro:hotpath
// annotation, with the source span cmd/lint -escapes uses to attribute
// compiler diagnostics.
type HotpathFunc struct {
	// Name is "Func" for a function, "Type.Method" for a method
	// (pointer receivers drop the star).
	Name string
	// File is the file the declaration lives in, as recorded by the
	// FileSet used to parse it.
	File string
	// StartLine and EndLine span the declaration inclusively.
	StartLine, EndLine int
	// Decl is the underlying declaration.
	Decl *ast.FuncDecl
}

// hasHotpathDirective reports whether the comment group carries the
// //repro:hotpath directive (with or without a space after "//").
func hasHotpathDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == hotpathDirective {
			return true
		}
	}
	return false
}

// hotpathTypeNames returns the names of the types annotated
// //repro:hotpath in files (on the type spec or its enclosing group).
func hotpathTypeNames(files []*ast.File) map[string]bool {
	out := make(map[string]bool)
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if hasHotpathDirective(gd.Doc) || hasHotpathDirective(ts.Doc) {
					out[ts.Name.Name] = true
				}
			}
		}
	}
	return out
}

// receiverBaseName returns the identifier naming a method's receiver
// base type ("" for functions and unresolvable receivers), looking
// through pointers, parentheses, and generic instantiations.
func receiverBaseName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.ParenExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// HotpathFuncs returns every function in files covered by a
// //repro:hotpath annotation — directly on the function, or inherited
// from an annotated receiver type — sorted by (file, start line). It is
// purely syntactic so the escape gate can use it on parse-only loads.
func HotpathFuncs(fset *token.FileSet, files []*ast.File) []HotpathFunc {
	hotTypes := hotpathTypeNames(files)
	var out []HotpathFunc
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			recv := receiverBaseName(fd)
			if !hasHotpathDirective(fd.Doc) && !(recv != "" && hotTypes[recv]) {
				continue
			}
			name := fd.Name.Name
			if recv != "" {
				name = recv + "." + name
			}
			start := fset.Position(fd.Pos())
			end := fset.Position(fd.End())
			out = append(out, HotpathFunc{
				Name:      name,
				File:      start.Filename,
				StartLine: start.Line,
				EndLine:   end.Line,
				Decl:      fd,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].StartLine < out[j].StartLine
	})
	return out
}
