package ignores

// The ignores below are malformed: no rule+reason pair. Each must earn
// a lintignore finding and suppress nothing.

//lint:ignore
func bareIgnore(a, b float64) bool {
	//lint:ignore floatcmp
	return a == b
}

//lint:file-ignore floatcmp

func wildcard(a, b float64) bool {
	//lint:ignore * fixture exercises the wildcard rule
	return a == b
}
