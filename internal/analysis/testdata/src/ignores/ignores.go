// Package ignores is a fixture for the suppression machinery: line
// ignores, file ignores, wildcards, and the lintignore meta-rule. It is
// exercised by unit tests, not the golden harness, because its
// deliberately malformed ignore comments produce lintignore findings
// that no single analyzer owns.
package ignores

//lint:file-ignore floatcmp fixture exercises file-wide suppression

func fileSuppressed(a, b float64) bool {
	return a == b // suppressed by the file-ignore above
}

func alsoFileSuppressed(a, b float64) bool {
	if a != b {
		return false
	}
	return true
}
