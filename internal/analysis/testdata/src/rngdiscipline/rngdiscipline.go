// Package rngdiscipline is a golden-file fixture for the
// rngdiscipline analyzer.
package rngdiscipline

import (
	"math/rand" // want `import of math/rand`
	"time"

	"repro/internal/rng"
)

func wallClockSeed() *rng.Source {
	seed := uint64(time.Now().UnixNano()) // want `time.Now is nondeterministic`
	return rng.New(seed)
}

func computedSeed() *rng.Source {
	return rng.New(globalDraw()) // want `seed of rng.New computed by a function call`
}

func computedSplitSeed() []*rng.Source {
	return rng.Split(globalDraw(), 4) // want `seed of rng.Split computed by a function call`
}

func zeroValueStream() rng.Source {
	return rng.Source{} // want `rng.Source composite literal`
}

func globalDraw() uint64 {
	return rand.Uint64()
}

// Disciplined constructions below must NOT be flagged.

func literalSeed() *rng.Source {
	return rng.New(42)
}

func plumbedSeed(seed uint64) *rng.Source {
	return rng.New(seed)
}

func convertedSeed(trial int) *rng.Source {
	return rng.New(uint64(trial) + 1)
}

func splitStreams(seed uint64, workers int) []*rng.Source {
	return rng.Split(seed, workers)
}

func suppressed() *rng.Source {
	//lint:ignore rngdiscipline fixture exercises the escape hatch
	return rng.New(globalDraw())
}
