// Package hotalloc is a golden-file fixture for the hotalloc analyzer.
package hotalloc

import (
	"fmt"
	"strconv"
)

// cursor is a hot-path type: every method inherits the annotation.
//
//repro:hotpath
type cursor struct {
	i    int
	vals []float64
}

func (c *cursor) next() float64 {
	c.vals = append(c.vals, 1) // want `append in hot path cursor.next allocates`
	return c.vals[c.i]
}

func (c *cursor) grow(n int) {
	c.vals = make([]float64, n) // want `make in hot path cursor.grow allocates`
}

func sink(v any) {}

func apply(f func() int) int { return f() }

func cleanup() {}

//repro:hotpath
func score(xs []float64, x int) float64 {
	p := new(float64) // want `new in hot path score allocates`
	_ = p
	_ = fmt.Sprintf("%d", 1)          // want `fmt.Sprintf in hot path score formats and allocates`
	_ = strconv.Itoa(x)               // want `strconv.Itoa in hot path score allocates a string`
	weights := []float64{1, 2, 3}     // want `slice literal in hot path score allocates`
	lookup := map[int]float64{1: 0.5} // want `map literal in hot path score allocates`
	_ = lookup
	sink(x) // want `passing int as any in hot path score boxes it on the heap`
	total := 0.0
	for _, w := range weights {
		defer cleanup() // want `defer inside a loop allocates a defer record per iteration`
		total += w
	}
	n := 0
	_ = apply(func() int { // want `closure in hot path score captures n, total`
		n++
		return int(total)
	})
	return total
}

//repro:hotpath
func allowed(xs []float64, e error, pc *cursor) float64 {
	// Pointer-shaped and interface arguments do not box.
	sink(e)
	sink(pc)
	sink(nil)
	sink(3) // constant: materialized in static data, no runtime boxing
	// Non-capturing closures are fine.
	_ = apply(func() int { return 1 })
	// Function-scope defer is open-coded and free.
	defer cleanup()
	// strconv parsers and Append* forms are exempt.
	v, _ := strconv.ParseFloat("1.5", 64)
	var buf [32]byte
	_ = strconv.AppendFloat(buf[:0], v, 'g', -1, 64)
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total
}

func notAnnotated(x int) string {
	// Same constructs outside a hot path: no findings.
	s := []float64{1}
	_ = append(s, 2)
	m := map[int]int{1: 2}
	_ = m
	sink(x)
	return fmt.Sprintf("%d", x)
}

//repro:hotpath
func suppressed(x int) {
	//lint:ignore hotalloc fixture exercises the escape hatch
	sink(x)
}
