// Package maporder is a golden-file fixture for the maporder analyzer.
package maporder

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/tablefmt"
)

func printsDuringRange(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)                 // want `fmt.Println inside range over map`
		fmt.Fprintf(os.Stdout, "%s\n", k) // want `fmt.Fprintf inside range over map`
	}
}

func buildsStringDuringRange(m map[string]int, sb *strings.Builder) {
	for k := range m {
		sb.WriteString(k) // want `WriteString call inside range over map`
	}
}

func appendsDuringRange(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out while ranging over a map`
	}
	return out
}

func feedsTableDuringRange(m map[string]float64, t *tablefmt.Table) {
	for k, v := range m {
		t.AddRowf(k, v) // want `tablefmt call inside range over map`
	}
}

// The idioms below are order-safe and must NOT be flagged.

func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func pureReduction(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func loopLocalScratch(m map[string]int) int {
	longest := 0
	for k := range m {
		parts := []string{}
		parts = append(parts, k)
		if len(parts[0]) > longest {
			longest = len(parts[0])
		}
	}
	return longest
}

func rangeOverSliceIsFine(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
		fmt.Println(x)
	}
	return out
}

func suppressed(m map[string]int) []string {
	var out []string
	for k := range m {
		//lint:ignore maporder fixture exercises the escape hatch
		out = append(out, k)
	}
	return out
}
