// Package mutexcopy is a golden-file fixture for the mutexcopy
// analyzer.
package mutexcopy

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

// take's by-value parameter is synccheck's finding; the call sites
// below are mutexcopy's.
func take(g guarded) int { return g.n }

type registry struct {
	g     guarded
	slots []guarded
}

func (r *registry) snapshot() guarded {
	return r.g // want `return copies .*guarded which contains a sync primitive`
}

func (r *registry) slot(i int) guarded {
	return r.slots[i] // want `return copies .*guarded which contains a sync primitive`
}

func flaggedCalls(r *registry, g guarded) {
	take(r.g) // want `call argument copies .*guarded which contains a sync primitive`
	take(g)   // want `call argument copies .*guarded which contains a sync primitive`
}

func flaggedLiteral(g guarded) registry {
	return registry{
		g: g, // want `composite literal copies .*guarded which contains a sync primitive`
	}
}

func takePtr(g *guarded) int { return g.n }

func allowed(r *registry) {
	// Pointers share, fresh literals and call results carry no live
	// lock state, and a constructor returning a whole local is the
	// standard idiom.
	takePtr(&r.g)
	take(guarded{})
	take(fresh())
	takePtr(new(guarded)) // new's operand names a type, it copies nothing
}

func fresh() guarded {
	var g guarded
	g.n = 1
	return g
}
