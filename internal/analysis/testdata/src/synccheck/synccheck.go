// Package synccheck is a golden-file fixture for the synccheck
// analyzer.
package synccheck

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

type nested struct {
	inner counter
	name  string
}

func lockByValueParam(c counter) int { // want `parameter passes .*counter by value`
	return c.n
}

func lockByValueReceiver(c counter) {} // want `parameter passes .*counter by value`

func (c counter) valueMethod() int { // want `receiver passes .*counter by value`
	return c.n
}

func waitGroupByValue(wg sync.WaitGroup) { // want `parameter passes sync.WaitGroup by value`
	wg.Wait()
}

func copyOutOfPointer(c *counter) {
	d := *c // want `assignment copies .*counter`
	_ = d
}

func copyVariable(a nested) nested { // want `parameter passes .*nested by value`
	b := a // want `assignment copies .*nested`
	return b
}

func rangeCopiesLock(cs []counter) int {
	total := 0
	for _, c := range cs { // want `range value copies .*counter`
		total += c.n
	}
	return total
}

func loopCapture(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sink(i) // want `goroutine captures loop variable i`
		}()
	}
	wg.Wait()
}

func rangeCapture(xs []int) {
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sink(x) // want `goroutine captures loop variable x`
		}()
	}
	wg.Wait()
}

// The shapes below are sound and must NOT be flagged.

func pointerParam(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) pointerMethod() int {
	return c.n
}

func freshValue() *counter {
	c := counter{} // fresh composite literal: nothing can hold its lock yet
	return &c
}

func loopArgPassing(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sink(i)
		}(i)
	}
	wg.Wait()
}

func suppressed(c *counter) {
	//lint:ignore synccheck fixture exercises the escape hatch
	d := *c
	_ = d
}

func sink(int) {}
