// Package ifaceescape is a golden-file fixture for the ifaceescape
// analyzer.
package ifaceescape

// cursor is a hot-path value type; converting it to an interface by
// value copies it to the heap.
//
//repro:hotpath
type cursor struct {
	i    int
	vals [8]float64
}

func (c cursor) Next() (float64, error) { return c.vals[c.i], nil }

// plain is structurally identical but not annotated.
type plain struct {
	i    int
	vals [8]float64
}

func (p plain) Next() (float64, error) { return p.vals[p.i], nil }

type iterator interface {
	Next() (float64, error)
}

func consume(it iterator) float64 {
	v, _ := it.Next()
	return v
}

func consumeAll(its ...iterator) {}

func flaggedCalls() {
	c := cursor{}
	consume(c)        // want `converting hot-path type .*cursor to .*iterator boxes the value`
	consumeAll(c, &c) // want `converting hot-path type .*cursor to .*iterator boxes the value`
	_ = iterator(c)   // want `converting hot-path type .*cursor to .*iterator boxes the value`
}

func flaggedAssignments() {
	c := cursor{}
	var it iterator = c // want `converting hot-path type .*cursor to .*iterator boxes the value`
	it = c              // want `converting hot-path type .*cursor to .*iterator boxes the value`
	_ = it
}

func flaggedLiterals() {
	c := cursor{}
	_ = []iterator{c} // want `converting hot-path type .*cursor to .*iterator boxes the value`
	_ = map[string]iterator{
		"c": c, // want `converting hot-path type .*cursor to .*iterator boxes the value`
	}
	type holder struct {
		it iterator
	}
	_ = holder{it: c} // want `converting hot-path type .*cursor to .*iterator boxes the value`
}

func flaggedReturn() iterator {
	c := cursor{}
	return c // want `converting hot-path type .*cursor to .*iterator boxes the value`
}

func allowedPointer() iterator {
	c := cursor{}
	consume(&c) // pointer boxing: the sanctioned once-per-block pattern
	var it iterator = &c
	_ = it
	return &c
}

func allowedUnannotated() iterator {
	p := plain{}
	consume(p) // not a hot-path type
	return p
}

func allowedConcrete(c cursor) cursor {
	d := c // plain value copy, no interface involved
	return d
}
