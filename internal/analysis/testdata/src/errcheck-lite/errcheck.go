// Package errcheck is a golden-file fixture for the errcheck-lite
// analyzer.
package errcheck

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"strings"
)

func flush(w *bufio.Writer) {
	w.Flush() // want `error return discarded`
}

func writeResults(path string, rows []string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `defer f.Close\(\) on a file opened for writing`
	for _, r := range rows {
		fmt.Fprintln(f, r)
	}
	return nil
}

func appendLog(path string) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close() // want `defer f.Close\(\) on a file opened for writing`
	return nil
}

// The discards below are sanctioned and must NOT be flagged.

func sanctioned(path string) error {
	fmt.Println("stdout chatter is fine")
	fmt.Fprintf(os.Stderr, "so is stderr\n")

	var sb strings.Builder
	sb.WriteString("in-memory writers never fail")
	var buf bytes.Buffer
	buf.WriteString("neither does bytes.Buffer")

	f, err := os.Open(path) // read-only: Close carries no write error
	if err != nil {
		return err
	}
	defer f.Close()

	w := bufio.NewWriter(os.Stdout)
	_ = w.Flush() // explicit blank assignment acknowledges the discard

	//lint:ignore errcheck-lite fixture exercises the escape hatch
	w.Flush()
	return nil
}

func checked(path string, rows []string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintln(f, r); err != nil {
			_ = f.Close()
			return err
		}
	}
	return f.Close()
}
