// Package valuerecv is a golden-file fixture for the valuerecv
// analyzer.
package valuerecv

// counter mixes receiver kinds: inc mutates through a pointer, but
// value and String copy the state at every call.
type counter struct {
	n     int
	cache map[int]int
}

func (c *counter) inc() { c.n++ }

func (c counter) value() int { return c.n } // want `method counter.value uses a value receiver but counter has pointer-receiver methods \(inc\)`

func (c counter) String() string { return "counter" } // want `method counter.String uses a value receiver but counter has pointer-receiver methods \(inc\)`

// pure has only value receivers: an immutable model value, fine.
type pure struct {
	x float64
}

func (p pure) scaled(f float64) float64 { return p.x * f }

func (p pure) offset(d float64) float64 { return p.x + d }

// ptrOnly has only pointer receivers: fine.
type ptrOnly struct {
	m map[string]int
}

func (p *ptrOnly) set(k string) { p.m[k] = 1 }

func (p *ptrOnly) get(k string) int { return p.m[k] }

// mixed value receivers can be suppressed case by case.
type sampler struct {
	seed uint64
}

func (s *sampler) advance() { s.seed++ }

//lint:ignore valuerecv fixture exercises the escape hatch
func (s sampler) peek() uint64 { return s.seed }
