// Package floatcmp is a golden-file fixture for the floatcmp analyzer.
package floatcmp

import "math"

const tol = 1e-9

func compare(a, b float64, xs []float64) int {
	if a == b { // want `floating-point == comparison`
		return 0
	}
	if a != b+1 { // want `floating-point != comparison`
		return 1
	}
	if xs[0] == a*b { // want `floating-point == comparison`
		return 2
	}
	return 3
}

func mixedWidth(f32 float32, f64 float64) bool {
	return float64(f32) == f64 // want `floating-point == comparison`
}

// Guarded idioms below must NOT be flagged.

func guards(a, b float64) int {
	if a == 0 { // zero sentinel
		return 0
	}
	if b != 0 { // zero sentinel, mirrored
		return 1
	}
	if a == 1 { // clamped-domain sentinel
		return 2
	}
	if a != a { // NaN idiom
		return 3
	}
	if math.IsNaN(b) {
		return 4
	}
	if math.Abs(a-b) <= tol { // the sanctioned comparison
		return 5
	}
	const half = 0.5
	if half == 0.25*2 { // both operands constant
		return 6
	}
	return 7
}

func suppressed(a, b float64) bool {
	//lint:ignore floatcmp fixture exercises the escape hatch
	return a == b
}

func intsAreFine(i, j int) bool {
	return i == j
}
