package analysis

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestAnalyzerGolden runs every analyzer against its fixture package
// under testdata/src/<rule>/ and checks the produced diagnostics
// against the fixtures' "// want `regexp`" comments: every want must be
// matched by exactly one diagnostic on its line, and every diagnostic
// must be claimed by a want. Unannotated fixture lines double as
// false-positive guards — any stray finding fails the test.
func TestAnalyzerGolden(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			runGolden(t, a)
		})
	}
}

// expectation is one parsed want comment.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("// want [`\"](.+)[`\"]$")

func runGolden(t *testing.T, a *Analyzer) {
	dir := filepath.Join("testdata", "src", a.Name)
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments; the golden test would pass vacuously", dir)
	}
	for _, d := range Run(pkg, []*Analyzer{a}) {
		claimed := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic (false positive or duplicate):\n  %s", d)
		}
		if d.Rule != a.Name {
			t.Errorf("diagnostic carries rule %q, want %q", d.Rule, a.Name)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missed diagnostic (rule regressed): %s:%d: want match for %q",
				filepath.Base(w.file), w.line, w.re)
		}
	}
}

// TestIgnoreRequiresReason pins the escape hatch's audit rule: a
// lint:ignore comment without a reason suppresses nothing.
func TestIgnoreRequiresReason(t *testing.T) {
	dir := filepath.Join("testdata", "src", "floatcmp")
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := []Diagnostic{{
		Pos:  pkg.Fset.Position(pkg.Files[0].Package),
		Rule: "floatcmp",
	}}
	if got := filterIgnored(pkg, diags); len(got) != 1 {
		t.Fatalf("diagnostic with no matching ignore was dropped: %d remain", len(got))
	}
}

// TestDirsSkipsTestdata checks pattern expansion: recursive walks must
// skip testdata and hidden directories so fixtures never gate the repo.
func TestDirsSkipsTestdata(t *testing.T) {
	dirs, err := Dirs([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no directories found")
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("Dirs returned fixture directory %s", d)
		}
	}
}

// TestLoaderResolvesModuleImports checks the loader against a package
// that imports both the standard library and module-internal packages.
func TestLoaderResolvesModuleImports(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if loader.ModulePath != "repro" {
		t.Fatalf("module path = %q, want repro", loader.ModulePath)
	}
	pkg, err := loader.Load(filepath.Join("..", "simulate"))
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types == nil || pkg.Info == nil {
		t.Fatal("package loaded without type information")
	}
	// The memoized dependency graph must contain internal/rng, pulled
	// in transitively, resolvable by import path.
	dep, err := loader.Import("repro/internal/rng")
	if err != nil {
		t.Fatal(err)
	}
	if dep.Name() != "rng" {
		t.Fatalf("imported package name = %q, want rng", dep.Name())
	}
}

// TestDiagnosticString pins the file:line:col output contract that
// editors and CI grep for.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Rule: "floatcmp", Message: "msg"}
	d.Pos.Filename = "x.go"
	d.Pos.Line = 3
	d.Pos.Column = 7
	if got, want := d.String(), "x.go:3:7: [floatcmp] msg"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
