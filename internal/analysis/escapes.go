package analysis

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// This file implements the compiler escape-analysis gate behind
// cmd/lint -escapes: run `go build -gcflags=-m` over the packages that
// declare //repro:hotpath functions, keep the heap-escape diagnostics
// whose positions fall inside an annotated function, and diff them
// against the committed ESCAPES.json baseline. The AST analyzers
// (hotalloc, ifaceescape) catch the allocation *sources* they can
// prove; the compiler catches everything else — closures it could not
// keep on the stack, values that outlive their frame through paths no
// syntactic rule anticipates. Go's build cache replays -m diagnostics
// for cached actions, so the gate costs one no-op build once the tree
// has been compiled.

// An EscapeRecord is one compiler heap-escape diagnostic attributed to
// a hot-path function. Records are keyed by (package, function,
// message) rather than by source line so the baseline survives
// unrelated edits that shift line numbers.
type EscapeRecord struct {
	// Pkg is the module-relative package directory, slash-separated
	// (e.g. "internal/core").
	Pkg string `json:"pkg"`
	// Func is the hot-path function, "Func" or "Type.Method".
	Func string `json:"func"`
	// Text is the compiler's diagnostic message, e.g.
	// "&UncoveredError{...} escapes to heap".
	Text string `json:"text"`
}

func (r EscapeRecord) key() string { return r.Pkg + "\x00" + r.Func + "\x00" + r.Text }

// String renders the record as "pkg: Func: text".
func (r EscapeRecord) String() string { return r.Pkg + ": " + r.Func + ": " + r.Text }

// sortEscapes orders records deterministically for output and diffing.
func sortEscapes(recs []EscapeRecord) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		return a.Text < b.Text
	})
}

// hotSpan locates the hot-path function covering line in one file.
type hotSpan struct {
	name     string
	from, to int // inclusive line range
}

// escapeDiagRE matches one compiler diagnostic: "file:line:col: msg".
var escapeDiagRE = regexp.MustCompile(`^(\S+?):(\d+):(\d+): (.+)$`)

// isHeapEscape reports whether a -m diagnostic message records a heap
// escape (as opposed to "does not escape", inlining notes, etc.).
func isHeapEscape(msg string) bool {
	return strings.Contains(msg, "escapes to heap") || strings.HasPrefix(msg, "moved to heap")
}

// EscapeScan builds the packages in dirs with -gcflags=-m from
// moduleDir and returns the heap-escape diagnostics that fall inside
// //repro:hotpath functions, sorted. Directories without any hot-path
// annotation are skipped. The scan is purely syntactic on the Go side
// (parse only, no type-check); the compiler provides the semantics.
func EscapeScan(moduleDir string, dirs []string) ([]EscapeRecord, error) {
	absModule, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	// spans indexes hot-path function ranges by the module-relative
	// slash path of each file, matching the compiler's output paths.
	spans := make(map[string][]hotSpan)
	pkgOf := make(map[string]string)
	var buildArgs []string
	for _, dir := range dirs {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(absModule, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("escapes: %s is outside module %s", dir, absModule)
		}
		relSlash := filepath.ToSlash(rel)
		bp, err := build.ImportDir(abs, 0)
		if err != nil {
			return nil, fmt.Errorf("escapes: %w", err)
		}
		fset := token.NewFileSet()
		var files []*ast.File
		for _, name := range bp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(abs, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("escapes: %w", err)
			}
			files = append(files, f)
		}
		funcs := HotpathFuncs(fset, files)
		if len(funcs) == 0 {
			continue
		}
		for _, hf := range funcs {
			key := relSlash + "/" + filepath.Base(hf.File)
			spans[key] = append(spans[key], hotSpan{name: hf.Name, from: hf.StartLine, to: hf.EndLine})
			pkgOf[key] = relSlash
		}
		buildArgs = append(buildArgs, "./"+relSlash)
	}
	if len(buildArgs) == 0 {
		return nil, nil
	}
	sort.Strings(buildArgs)

	// -gcflags=-m applies to the named packages only, so diagnostics
	// stay scoped to the annotated directories.
	cmd := exec.Command("go", "build", "-gcflags=-m", "-o", os.DevNull)
	cmd.Args = append(cmd.Args, buildArgs...)
	cmd.Dir = absModule
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("escapes: go build failed: %v\n%s", err, out.String())
	}

	var recs []EscapeRecord
	seen := make(map[string]bool)
	sc := bufio.NewScanner(&out)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		m := escapeDiagRE.FindStringSubmatch(line)
		if m == nil || strings.HasPrefix(m[1], "<autogenerated>") {
			continue
		}
		msg := m[4]
		if !isHeapEscape(msg) {
			continue
		}
		file := filepath.ToSlash(m[1])
		lineNo, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		for _, sp := range spans[file] {
			if lineNo >= sp.from && lineNo <= sp.to {
				r := EscapeRecord{Pkg: pkgOf[file], Func: sp.name, Text: msg}
				if !seen[r.key()] {
					seen[r.key()] = true
					recs = append(recs, r)
				}
				break
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("escapes: reading go build output: %w", err)
	}
	sortEscapes(recs)
	return recs, nil
}

// escapeBaseline is the on-disk shape of ESCAPES.json.
type escapeBaseline struct {
	Comment string         `json:"_comment,omitempty"`
	Escapes []EscapeRecord `json:"escapes"`
}

const escapeBaselineComment = "Heap escapes the compiler reports inside //repro:hotpath functions. " +
	"Every entry is a deliberate cold-path allocation (error construction, etc). " +
	"Regenerate with: go run ./cmd/lint -escapes -write"

// ReadEscapeBaseline loads ESCAPES.json. A missing file is an empty
// baseline, so the gate can bootstrap a repository with no escapes.
func ReadEscapeBaseline(path string) ([]EscapeRecord, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var b escapeBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	sortEscapes(b.Escapes)
	return b.Escapes, nil
}

// WriteEscapeBaseline writes ESCAPES.json with sorted, deduplicated
// records.
func WriteEscapeBaseline(path string, recs []EscapeRecord) error {
	recs = append([]EscapeRecord(nil), recs...)
	sortEscapes(recs)
	data, err := json.MarshalIndent(escapeBaseline{
		Comment: escapeBaselineComment,
		Escapes: recs,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// DiffEscapes compares a fresh scan against the baseline. unexpected
// holds escapes the compiler reports that the baseline does not record
// (the gate fails on these); stale holds baseline entries the compiler
// no longer reports (the baseline should be regenerated so it cannot
// mask a future regression).
func DiffEscapes(got, baseline []EscapeRecord) (unexpected, stale []EscapeRecord) {
	inBase := make(map[string]bool, len(baseline))
	for _, r := range baseline {
		inBase[r.key()] = true
	}
	inGot := make(map[string]bool, len(got))
	for _, r := range got {
		inGot[r.key()] = true
		if !inBase[r.key()] {
			unexpected = append(unexpected, r)
		}
	}
	for _, r := range baseline {
		if !inGot[r.key()] {
			stale = append(stale, r)
		}
	}
	sortEscapes(unexpected)
	sortEscapes(stale)
	return unexpected, stale
}
