package analysis

import (
	"go/ast"
	"go/types"
)

// IfaceEscape guards the cursor/workload value types that the scoring
// loops keep on the stack: converting a value of a //repro:hotpath
// type (core.CostCursor, core.RecurrenceCursor, simulate.Workload, …)
// to an interface copies the whole value to the heap at every
// conversion site. It flags such by-value conversions anywhere in the
// analyzed package — call arguments, assignments, declarations,
// returns, and composite-literal elements — across package boundaries
// (the annotation is read from the dependency's source).
//
// Boxing a *pointer* to a hot-path type is deliberately allowed: the
// pointer rides in the interface word, so handing &cursor to a scorer
// costs one escape per worker block, which is the sanctioned pattern
// (see strategy.BruteForce.SearchOn).
var IfaceEscape = &Analyzer{
	Name: "ifaceescape",
	Doc:  "flags by-value conversions of //repro:hotpath types to interfaces, which force a heap copy per conversion",
	Run:  runIfaceEscape,
}

func runIfaceEscape(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				checkIfaceEscapeCall(p, e)
			case *ast.AssignStmt:
				if len(e.Lhs) == len(e.Rhs) {
					for i, rhs := range e.Rhs {
						if lt := lhsType(p, e.Lhs[i]); lt != nil && types.IsInterface(lt.Underlying()) {
							reportIfaceEscape(p, rhs, lt)
						}
					}
				}
			case *ast.ValueSpec:
				if e.Type != nil {
					ttv, ok := p.Info.Types[e.Type]
					if ok && ttv.Type != nil && types.IsInterface(ttv.Type.Underlying()) {
						for _, v := range e.Values {
							reportIfaceEscape(p, v, ttv.Type)
						}
					}
				}
			case *ast.CompositeLit:
				checkIfaceEscapeLit(p, e)
			case *ast.FuncDecl:
				if e.Body != nil {
					checkIfaceEscapeReturns(p, e.Type, e.Body)
				}
			case *ast.FuncLit:
				checkIfaceEscapeReturns(p, e.Type, e.Body)
			}
			return true
		})
	}
}

// lhsType resolves the static type of an assignment target, falling
// back to the identifier's object when the expression carries no type
// entry (LHS identifiers of := are definitions, not typed expressions).
func lhsType(p *Pass, e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := p.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := p.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// hotValueType reports whether e's static type is (after aliases) a
// named //repro:hotpath type held by value.
func hotValueType(p *Pass, e ast.Expr) (types.Type, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return nil, false
	}
	named, ok := types.Unalias(tv.Type).(*types.Named)
	if !ok {
		return nil, false
	}
	if !p.Package.IsHotpathType(named.Obj()) {
		return nil, false
	}
	return tv.Type, true
}

func reportIfaceEscape(p *Pass, e ast.Expr, target types.Type) {
	if at, ok := hotValueType(p, e); ok {
		p.Reportf(e.Pos(), "converting hot-path type %s to %s boxes the value on the heap at every conversion; box a pointer (&x) once per block instead", at, target)
	}
}

// checkIfaceEscapeCall flags arguments (and single-argument interface
// conversions) that box a hot-path value.
func checkIfaceEscapeCall(p *Pass, call *ast.CallExpr) {
	if isConversion(p.Info, call) {
		tv := p.Info.Types[ast.Unparen(call.Fun)]
		if tv.Type != nil && types.IsInterface(tv.Type.Underlying()) && len(call.Args) == 1 {
			reportIfaceEscape(p, call.Args[0], tv.Type)
		}
		return
	}
	ftv, ok := p.Info.Types[call.Fun]
	if !ok || ftv.Type == nil {
		return
	}
	sig, ok := ftv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			last := sig.Params().At(np - 1).Type()
			if call.Ellipsis.IsValid() {
				pt = last
			} else if sl, ok := last.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		if pt != nil && types.IsInterface(pt.Underlying()) {
			reportIfaceEscape(p, arg, pt)
		}
	}
}

// checkIfaceEscapeLit flags hot-path values stored into interface-typed
// slice/array/map elements and struct fields of a composite literal.
func checkIfaceEscapeLit(p *Pass, cl *ast.CompositeLit) {
	tv, ok := p.Info.Types[cl]
	if !ok || tv.Type == nil {
		return
	}
	var elemFor func(elt ast.Expr, i int) (types.Type, ast.Expr)
	switch u := tv.Type.Underlying().(type) {
	case *types.Slice:
		elemFor = func(elt ast.Expr, _ int) (types.Type, ast.Expr) { return u.Elem(), valueOfElt(elt) }
	case *types.Array:
		elemFor = func(elt ast.Expr, _ int) (types.Type, ast.Expr) { return u.Elem(), valueOfElt(elt) }
	case *types.Map:
		elemFor = func(elt ast.Expr, _ int) (types.Type, ast.Expr) { return u.Elem(), valueOfElt(elt) }
	case *types.Struct:
		elemFor = func(elt ast.Expr, i int) (types.Type, ast.Expr) {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					for j := 0; j < u.NumFields(); j++ {
						if u.Field(j).Name() == id.Name {
							return u.Field(j).Type(), kv.Value
						}
					}
				}
				return nil, nil
			}
			if i < u.NumFields() {
				return u.Field(i).Type(), elt
			}
			return nil, nil
		}
	default:
		return
	}
	for i, elt := range cl.Elts {
		ft, v := elemFor(elt, i)
		if ft != nil && v != nil && types.IsInterface(ft.Underlying()) {
			reportIfaceEscape(p, v, ft)
		}
	}
}

// valueOfElt unwraps a key:value element to its value.
func valueOfElt(elt ast.Expr) ast.Expr {
	if kv, ok := elt.(*ast.KeyValueExpr); ok {
		return kv.Value
	}
	return elt
}

// checkIfaceEscapeReturns flags returns of hot-path values through
// interface-typed results, stopping at nested func literals (each is
// scanned against its own signature).
func checkIfaceEscapeReturns(p *Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	if ft.Results == nil {
		return
	}
	var results []types.Type
	for _, field := range ft.Results.List {
		tv, ok := p.Info.Types[field.Type]
		if !ok || tv.Type == nil {
			return
		}
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			results = append(results, tv.Type)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			if len(s.Results) != len(results) {
				return true // bare return or multi-value call
			}
			for i, r := range s.Results {
				if types.IsInterface(results[i].Underlying()) {
					reportIfaceEscape(p, r, results[i])
				}
			}
		}
		return true
	})
}
