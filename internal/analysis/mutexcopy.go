package analysis

import (
	"go/ast"
)

// MutexCopy is the call-site complement of synccheck's declaration-side
// rules, guarding the concurrency-safe types internal/service and
// repro.Planner hand around. Where synccheck flags parameters,
// receivers, assignments, and range clauses, mutexcopy flags the
// remaining ways an in-use lock is silently duplicated:
//
//   - passing a lock-bearing value as a call argument (the callee's
//     declaration may be out of reach of the per-package parameter
//     check: another package, an interface method, a func value);
//   - returning a lock-bearing field, element, or dereference by value
//     (the caller receives a private copy of live lock state);
//   - initializing a composite-literal field by copying a lock-bearing
//     value out of an existing variable.
//
// Fresh values are legal, as in synccheck: passing a composite literal
// or a call result copies state no goroutine can hold yet, and a
// constructor returning a whole local by value is the standard idiom —
// only reads out of existing fields/elements are flagged on return
// paths.
var MutexCopy = &Analyzer{
	Name: "mutexcopy",
	Doc:  "flags lock-bearing values copied at call sites, returns of lock-bearing fields, and composite-literal copies",
	Run:  runMutexCopy,
}

func runMutexCopy(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				if isConversion(p.Info, e) {
					break
				}
				for _, arg := range e.Args {
					checkMutexCopyRead(p, arg, "call argument", false)
				}
			case *ast.ReturnStmt:
				for _, r := range e.Results {
					// A bare local identifier is the constructor idiom
					// (fresh value, nothing holds its lock yet); only
					// reads out of structured state are flagged.
					checkMutexCopyRead(p, r, "return", true)
				}
			case *ast.CompositeLit:
				for _, elt := range e.Elts {
					checkMutexCopyRead(p, valueOfElt(elt), "composite literal", false)
				}
			}
			return true
		})
	}
}

// checkMutexCopyRead reports e if it reads a lock-bearing value out of
// existing state: an identifier, field selection, index, or
// dereference whose type contains a sync primitive by value. When
// skipIdents is set, bare identifiers are exempt.
func checkMutexCopyRead(p *Pass, e ast.Expr, context string, skipIdents bool) {
	e = ast.Unparen(e)
	switch e.(type) {
	case *ast.Ident:
		if skipIdents {
			return
		}
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	tv, ok := p.Info.Types[e]
	// Only values count: skip constants and type expressions (the
	// operand of new/make names a type, it copies nothing).
	if !ok || tv.Type == nil || tv.Value != nil || !tv.IsValue() {
		return
	}
	if containsLock(tv.Type) {
		p.Reportf(e.Pos(), "%s copies %s which contains a sync primitive; pass or return a pointer", context, tv.Type)
	}
}
