package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// RNGDiscipline enforces the repository's deterministic-replay
// invariant: every random draw must come from a seeded internal/rng
// stream so any experiment reruns bit-for-bit. It flags
//
//   - imports of math/rand or math/rand/v2 (globally seeded, not
//     replayable per stream),
//   - calls to time.Now (wall-clock values leak nondeterminism into
//     seeds and output),
//   - rng.New / rng.Split whose seed argument is derived from a
//     function call (seeds must be literals, constants, or plumbed-in
//     values; conversions like uint64(seed) are fine), and
//   - composite-literal construction of rng.Source (the zero value is
//     unusable; streams come only from the New/Split factories).
var RNGDiscipline = &Analyzer{
	Name: "rngdiscipline",
	Doc:  "flags math/rand, time.Now seeds, and rng streams built outside the seeded factories",
	Run:  runRNGDiscipline,
}

// rngPkgSuffix matches the module's RNG package in both the real tree
// and testdata fixtures.
const rngPkgSuffix = "internal/rng"

func runRNGDiscipline(p *Pass) {
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp.Pos(),
					"import of %s: use the seeded streams from internal/rng so runs replay deterministically", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				obj := calleeOf(p.Info, e)
				if isPkgFunc(obj, "time", "Now") {
					p.Reportf(e.Pos(),
						"time.Now is nondeterministic; thread a seed or timestamp in from the caller")
					return true
				}
				if obj != nil && obj.Pkg() != nil && pathMatches(obj.Pkg().Path(), rngPkgSuffix) &&
					(obj.Name() == "New" || obj.Name() == "Split") && len(e.Args) > 0 {
					checkSeedExpr(p, obj.Name(), e.Args[0])
				}
			case *ast.CompositeLit:
				if tv, ok := p.Info.Types[e]; ok && isRNGSourceType(tv.Type) {
					p.Reportf(e.Pos(),
						"rng.Source composite literal: streams must come from rng.New or rng.Split")
				}
			}
			return true
		})
	}
}

// checkSeedExpr reports any non-conversion call feeding the seed of
// rng.New/rng.Split: a computed seed is where wall clocks and global
// RNGs sneak in, so seeds must be data, not effects.
func checkSeedExpr(p *Pass, fact string, seed ast.Expr) {
	ast.Inspect(seed, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || isConversion(p.Info, call) {
			return true
		}
		p.Reportf(call.Pos(),
			"seed of rng.%s computed by a function call; pass an explicit seed value instead", fact)
		return false
	})
}

// isRNGSourceType reports whether t (possibly behind a pointer) is
// internal/rng.Source.
func isRNGSourceType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Source" && obj.Pkg() != nil && pathMatches(obj.Pkg().Path(), rngPkgSuffix)
}
