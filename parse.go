package repro

// The canonical distribution grammar shared by the CLI (`reserve
// -dist`), the plan service (internal/service), and PlanSummary:
// "name(p1,p2,...)", case-insensitive, whitespace-tolerant.
// ParseDistribution and DistributionSpec are inverses on the nine
// Table-1 laws: ParseDistribution(DistributionSpec(d)) reproduces d's
// parameters exactly, and DistributionSpec(ParseDistribution(s))
// yields the canonical form of s.

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/dist"
)

// ParseDistribution parses "name(p1,p2,...)" into a Distribution.
// Accepted names: exponential (exp), weibull, gamma, lognormal,
// truncnormal (truncatednormal), pareto, uniform, beta, boundedpareto.
func ParseDistribution(s string) (Distribution, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("repro: malformed distribution %q, want name(p1,p2,...)", s)
	}
	name := strings.TrimSpace(s[:open])
	var params []float64
	body := strings.TrimSpace(s[open+1 : len(s)-1])
	if body != "" {
		for _, part := range strings.Split(body, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return nil, fmt.Errorf("repro: bad parameter %q in %q", part, s)
			}
			params = append(params, v)
		}
	}
	need := func(n int) error {
		if len(params) != n {
			return fmt.Errorf("repro: %s needs %d parameters, got %d", name, n, len(params))
		}
		return nil
	}
	switch name {
	case "exponential", "exp":
		if err := need(1); err != nil {
			return nil, err
		}
		return asDist(Exponential(params[0]))
	case "weibull":
		if err := need(2); err != nil {
			return nil, err
		}
		return asDist(Weibull(params[0], params[1]))
	case "gamma":
		if err := need(2); err != nil {
			return nil, err
		}
		return asDist(Gamma(params[0], params[1]))
	case "lognormal":
		if err := need(2); err != nil {
			return nil, err
		}
		return asDist(LogNormal(params[0], params[1]))
	case "truncnormal", "truncatednormal":
		if err := need(3); err != nil {
			return nil, err
		}
		return asDist(TruncatedNormal(params[0], params[1], params[2]))
	case "pareto":
		if err := need(2); err != nil {
			return nil, err
		}
		return asDist(Pareto(params[0], params[1]))
	case "uniform":
		if err := need(2); err != nil {
			return nil, err
		}
		return asDist(Uniform(params[0], params[1]))
	case "beta":
		if err := need(2); err != nil {
			return nil, err
		}
		return asDist(Beta(params[0], params[1]))
	case "boundedpareto":
		if err := need(3); err != nil {
			return nil, err
		}
		return asDist(BoundedPareto(params[0], params[1], params[2]))
	default:
		return nil, fmt.Errorf("repro: unknown distribution %q", name)
	}
}

// DistributionSpec returns the canonical "name(p1,p2,...)" form of d,
// suitable for ParseDistribution, cache keys, and PlanSummary. It
// fails for laws outside the grammar (empirical, mixtures, wrappers).
func DistributionSpec(d Distribution) (string, error) {
	if s, ok := dist.SpecOf(d); ok {
		return s, nil
	}
	return "", fmt.Errorf("repro: %s has no canonical spec", d.Name())
}

// asDist normalizes a (value-type distribution, error) constructor
// result so that failures yield a genuinely nil interface — otherwise
// the zero struct would be boxed into a non-nil Distribution alongside
// the error.
func asDist[T Distribution](d T, err error) (Distribution, error) {
	if err != nil {
		return nil, err
	}
	return d, nil
}
