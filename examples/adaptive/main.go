// Adaptive planning for an unknown distribution (internal/online): a
// team starts submitting a brand-new pipeline whose execution-time law
// nobody has profiled. The learner begins with a crude prior, observes
// each finished job's exact duration, refits, and replans — converging
// to the clairvoyant planner that knew the law all along.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/online"
)

func main() {
	// The (unknown to the learner) truth: LogNormal(μ=1, σ=0.5) hours.
	truth := dist.MustLogNormal(1, 0.5)
	// The crude prior: "jobs take about 20 hours, exponentially spread".
	prior := dist.MustExponential(0.05)
	m := core.ReservationOnly

	fmt.Printf("truth:  %s (mean %.2f h)\n", truth.Name(), truth.Mean())
	fmt.Printf("prior:  %s (mean %.2f h)\n\n", prior.Name(), prior.Mean())

	for _, est := range []online.Estimator{online.Empirical, online.SmoothedLogNormal} {
		l, err := online.NewLearner(m, prior, online.Config{Estimator: est, DiscN: 150})
		if err != nil {
			log.Fatal(err)
		}
		ev, err := online.Evaluate(l, truth, 500, 42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("estimator %-20s total %8.1f h  oracle %8.1f h  regret %7.1f h  tail ratio %.3f\n",
			est, ev.TotalCost, ev.OracleTotal, ev.Regret, ev.TailRatio)

		// Show the learning curve in blocks of 100 jobs.
		fmt.Print("  per-100-job cost ratio vs oracle: ")
		for b := 0; b < 5; b++ {
			var lc, oc float64
			for _, r := range ev.Runs[b*100 : (b+1)*100] {
				lc += r.Cost
				oc += r.OracleCost
			}
			fmt.Printf("%.2f ", lc/oc)
		}
		fmt.Println()
	}

	fmt.Println("\nThe first block pays for the bad prior; after ~100 observations both")
	fmt.Println("estimators plan within a few percent of the clairvoyant optimum.")
}
