// Convex costs (Appendix C of the paper): some platforms penalize long
// reservations superlinearly — e.g. a scheduler that charges a
// quadratic premium to discourage walltime over-estimation. This
// example compares the optimal-recurrence strategy under the affine
// cost G(x) = x with a quadratic cost G(x) = x + 0.05·x², using the
// generalized recurrence of Eq. (37).
//
//	go run ./examples/convexcost
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/strategy"
)

func main() {
	d := dist.MustLogNormal(0.5, 0.6) // execution time in hours
	fmt.Printf("job: %s, mean %.2f h\n\n", d.Name(), d.Mean())

	affine := core.AffineCost{Alpha: 1, Gamma: 0}
	quad := core.QuadraticCost{A: 0.05, B: 1, C: 0}

	for _, c := range []struct {
		name string
		g    core.ConvexCost
	}{
		{"affine   G(x) = x", affine},
		{"quadratic G(x) = x + 0.05x²", quad},
	} {
		bf := strategy.ConvexBruteForce{G: c.g, M: 3000}
		t1, cost, seq, err := bf.Search(d)
		if err != nil {
			log.Fatal(err)
		}
		v, err := seq.Prefix(5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", c.name)
		fmt.Printf("  best t1 = %.3f h, expected cost %.3f\n", t1, cost)
		fmt.Printf("  sequence: %.4g\n\n", v)
	}

	fmt.Println("Under the quadratic premium the optimal first reservation shrinks")
	fmt.Println("and the sequence grows in smaller steps: overshooting a reservation")
	fmt.Println("is now much more expensive than paying an extra attempt.")
}
