// Checkpointing (the paper's §7 future work, implemented in
// internal/checkpoint): when a reservation turns out too short, the
// paper's base model loses all the work done. With checkpoint/restart,
// each reservation can end with a snapshot (C time units) and the next
// one resumes from it (R time units), so only the snapshot overhead is
// at risk. This example quantifies that trade-off for a heavy-tailed
// job on a pay-per-reservation platform, sweeping the checkpoint cost.
//
//	go run ./examples/checkpointing
package main

import (
	"fmt"
	"log"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/dist"
	"repro/internal/dp"
)

func main() {
	// A Weibull(κ=0.5) job: heavy tail, so late failures waste a lot of
	// work under the reservation-only model.
	job := dist.MustWeibull(1, 0.5)
	dd, err := discretize.Discretize(job, 100, 1e-6, discretize.EqualProbability)
	if err != nil {
		log.Fatal(err)
	}
	m := core.ReservationOnly

	// Baseline: the paper's optimal reservation-only strategy (Thm 5).
	base, err := dp.Solve(dd, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job: %s (mean %.2f)\n", job.Name(), job.Mean())
	fmt.Printf("reservation-only optimum (Theorem 5): expected cost %.4f over %d reservations\n\n",
		base.ExpectedCost, len(base.Sequence))

	fmt.Printf("%-10s %-12s %-12s %-12s %-10s %s\n",
		"ckpt cost", "no-ckpt", "all-ckpt", "mixed-opt", "saving", "snapshots")
	for _, c := range []float64{0, 0.02, 0.05, 0.1, 0.25, 0.5, 1, 2} {
		p := checkpoint.Params{C: c, R: c} // restore as expensive as save
		no, err := checkpoint.SolveNoCheckpoint(dd, m, p)
		if err != nil {
			log.Fatal(err)
		}
		all, err := checkpoint.SolveAllCheckpoint(dd, m, p)
		if err != nil {
			log.Fatal(err)
		}
		mix, err := checkpoint.Solve(dd, m, p)
		if err != nil {
			log.Fatal(err)
		}
		snaps := 0
		for _, st := range mix.Steps {
			if st.Checkpoint {
				snaps++
			}
		}
		fmt.Printf("%-10.2f %-12.4f %-12.4f %-12.4f %-9.1f%% %d/%d\n",
			c, no.ExpectedCost, all.ExpectedCost, mix.ExpectedCost,
			100*(1-mix.ExpectedCost/no.ExpectedCost), snaps, len(mix.Steps))
	}

	// Validate the winner against Monte-Carlo replay.
	p := checkpoint.Params{C: 0.05, R: 0.05}
	mix, err := checkpoint.Solve(dd, m, p)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := mix.Simulate(m, p, dd, 200000, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nC=R=0.05 mixed policy: DP expectation %.4f, Monte-Carlo replay %.4f\n",
		mix.ExpectedCost, sim)
	fmt.Println("\npolicy detail (milestone, checkpoint?, reserved length):")
	for i, st := range mix.Steps {
		fmt.Printf("  step %2d: reach %-8.4g ckpt=%-5v reserve %.4g\n",
			i+1, st.Milestone, st.Checkpoint, st.Length)
	}
}
