// Quickstart: plan reservations for a stochastic job whose execution
// time follows a known distribution, compare strategies, and price a
// concrete run.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A job whose execution time is LogNormal(μ=3, σ=0.5) hours — the
	// paper's Table-1 instantiation. Mean ≈ 22.8 hours, but any single
	// run may take far longer.
	job, err := repro.LogNormal(3, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job distribution: %s, mean %.1f h\n\n", job.Name(), job.Mean())

	// Reserve on a cloud platform where you pay exactly what you
	// request (AWS Reserved Instances): α=1, β=γ=0.
	plan, err := repro.MakePlan(repro.ReservationOnly, job, repro.StrategyBruteForce,
		repro.Options{GridM: 2000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("brute-force reservation sequence (hours): %.4g\n", plan.Reservations[:6])
	fmt.Printf("expected cost: %.2f h — %.2f× the omniscient scheduler\n\n",
		plan.ExpectedCost, plan.NormalizedCost)

	// Price a few concrete runs under the plan.
	for _, t := range []float64{12.0, 25.0, 60.0} {
		cost, attempts, err := plan.CostFor(t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("a run of %5.1f h costs %6.2f h of reservations over %d attempt(s)\n",
			t, cost, attempts)
	}
	fmt.Println()

	// Compare all strategies.
	fmt.Println("strategy comparison (normalized expected cost, lower is better):")
	for _, name := range repro.Strategies() {
		p, err := repro.MakePlan(repro.ReservationOnly, job, name,
			repro.Options{GridM: 2000, DiscN: 1000})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %.3f\n", name, p.NormalizedCost)
	}
}
