// Cloud reservation planning: should a batch of stochastic jobs run on
// Reserved Instances (pay for what you request, ~4× cheaper per hour)
// or On-Demand (pay for what you use)? This is the §5.2 analysis of the
// paper: reservations win when the strategy's normalized expected cost
// stays below the On-Demand/Reserved price ratio.
//
//	go run ./examples/cloud
package main

import (
	"fmt"
	"log"

	"repro"
)

// workload is a fleet of job classes, each with its own execution-time
// law (the paper's Table-1 instantiations, interpreted in hours).
type workload struct {
	name  string
	dist  repro.Distribution
	daily int // jobs per day
}

func main() {
	mk := func(d repro.Distribution, err error) repro.Distribution {
		if err != nil {
			log.Fatal(err)
		}
		return d
	}
	fleet := []workload{
		{"etl-batch", mk(repro.LogNormal(1.2, 0.6)), 120},
		{"ml-training", mk(repro.Weibull(4, 1.5)), 30},
		{"render-frames", mk(repro.Uniform(0.5, 2.5)), 400},
		{"genome-align", mk(repro.Gamma(3, 0.8)), 55},
	}
	const (
		reservedPerHour = 0.025 // $/h, Reserved Instance
		onDemandPerHour = 0.100 // $/h, On-Demand (factor 4, as in the paper)
	)
	ratio := onDemandPerHour / reservedPerHour

	fmt.Printf("Reserved $%.3f/h vs On-Demand $%.3f/h (ratio %.1f)\n\n", reservedPerHour, onDemandPerHour, ratio)
	fmt.Printf("%-15s %-10s %-12s %-12s %-12s %s\n",
		"job class", "mean (h)", "norm. cost", "RI $/job", "OD $/job", "verdict")

	var riTotal, odTotal float64
	for _, w := range fleet {
		plan, err := repro.MakePlan(repro.ReservationOnly, w.dist, repro.StrategyBruteForce,
			repro.Options{GridM: 2000})
		if err != nil {
			log.Fatalf("%s: %v", w.name, err)
		}
		// Reserved: pay the reservation sequence at the reserved rate.
		riPerJob := plan.ExpectedCost * reservedPerHour
		// On-Demand: pay exactly the execution time at the on-demand
		// rate (the omniscient cost — no reservations needed).
		odPerJob := w.dist.Mean() * onDemandPerHour
		verdict := "on-demand"
		if worthIt, _ := plan.ReservedVsOnDemand(ratio); worthIt {
			verdict = "RESERVE"
		}
		fmt.Printf("%-15s %-10.2f %-12.2f $%-11.4f $%-11.4f %s\n",
			w.name, w.dist.Mean(), plan.NormalizedCost, riPerJob, odPerJob, verdict)
		riTotal += riPerJob * float64(w.daily)
		odTotal += odPerJob * float64(w.daily)
	}
	fmt.Printf("\nfleet daily spend: reserved $%.2f vs on-demand $%.2f (saving %.1f%%)\n",
		riTotal, odTotal, 100*(1-riTotal/odTotal))
}
