// Elastic requests (the paper's §7 future work, implemented in
// internal/resources): choose both the reservation length AND the
// number of processors. A job has random total work W; on p processors
// it runs for σ(p)·W wall-clock units under Amdahl's law. The platform
// bills requested node-hours, and the user additionally values
// turnaround time — few processors waste time, many waste node-hours on
// the serial fraction, so the optimum is interior.
//
//	go run ./examples/elastic
package main

import (
	"fmt"
	"log"

	"repro/internal/dist"
	"repro/internal/resources"
	"repro/internal/strategy"
)

func main() {
	// Work follows LogNormal(μ=1, σ=0.4) node-hours.
	work := dist.MustLogNormal(1, 0.4)
	fmt.Printf("work law: %s, mean %.2f node-hours\n", work.Name(), work.Mean())

	su, err := resources.NewAmdahl(0.05) // 5% serial fraction
	if err != nil {
		log.Fatal(err)
	}
	cost := resources.JobCost{
		NodeAlpha:  1,  // $ per requested node-hour
		TimeWeight: 20, // $ per wall-clock hour of reservation (deadline pressure)
	}
	fmt.Printf("speedup: %s; cost: $%g/node-hour requested + $%g/hour reserved\n\n",
		su.Name(), cost.NodeAlpha, cost.TimeWeight)

	procs := []int{1, 2, 4, 8, 16, 32, 64, 128}
	bf := strategy.BruteForce{M: 2000, Mode: strategy.EvalAnalytic}
	best, all, err := resources.Optimize(work, cost, su, procs, bf)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s %-10s %-14s %s\n", "procs", "σ(p)", "expected cost", "first reservations (h)")
	for _, ch := range all {
		v, err := ch.Sequence.Clone().Prefix(3)
		if err != nil {
			log.Fatal(err)
		}
		marker := " "
		if ch.Procs == best.Procs {
			marker = "*"
		}
		fmt.Printf("%-6d %-10.4f $%-13.2f %.3g %s\n",
			ch.Procs, su.TimePerWork(ch.Procs), ch.ExpectedCost, v, marker)
	}
	fmt.Printf("\nbest request shape: p = %d processors, first slot %.3f h, expected $%.2f/job\n",
		best.Procs, firstOf(best), best.ExpectedCost)

	// Contrast: bill node-hours only (no deadline pressure) → p = 1.
	flat := resources.JobCost{NodeAlpha: 1}
	bestFlat, _, err := resources.Optimize(work, flat, su, procs, bf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without turnaround pressure the optimum collapses to p = %d ($%.2f/job)\n",
		bestFlat.Procs, bestFlat.ExpectedCost)
}

func firstOf(c resources.Choice) float64 {
	v, err := c.Sequence.Clone().Prefix(1)
	if err != nil || len(v) == 0 {
		return 0
	}
	return v[0]
}
