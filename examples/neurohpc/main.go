// NeuroHPC: the paper's §5.3 scenario end to end. A neuroscience
// pipeline (VBMQA) runs thousands of jobs on an HPC cluster whose queue
// wait grows affinely with the requested walltime. We (1) fit a
// LogNormal law to the application's (synthetic) execution trace,
// (2) fit the affine wait-time law from the (synthetic) scheduler log,
// (3) plan a reservation strategy minimizing expected turnaround time,
// and (4) replay a campaign of jobs on the simulated platform to check
// the plan's prediction.
//
//	go run ./examples/neurohpc
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/platform"
	"repro/internal/strategy"
	"repro/internal/trace"
)

func main() {
	// --- 1. Fit the application's execution-time distribution. ---
	runs, err := trace.GenerateRunTrace(trace.VBMQA, 5000, 0.01, 1)
	if err != nil {
		log.Fatal(err)
	}
	fitSec, err := dist.FitLogNormal(runs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VBMQA trace fit: LogNormal(μ=%.4f, σ=%.4f), KS=%.4f\n",
		fitSec.Mu(), fitSec.Sigma(), dist.KSStatistic(runs, fitSec))

	// Work in hours from here on.
	d, err := dist.NewLogNormal(fitSec.Mu()-math.Log(platform.SecondsPerHour), fitSec.Sigma())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("execution time:  mean %.3f h, sd %.3f h\n\n", d.Mean(), dist.StdDev(d))

	// --- 2. Fit the queue's wait-time law. ---
	wlog, err := trace.GenerateWaitTimeLog(trace.Intrepid409, 20, 600, 72000, 0.05, 2)
	if err != nil {
		log.Fatal(err)
	}
	wfit, err := trace.FitWaitTimeModel(wlog)
	if err != nil {
		log.Fatal(err)
	}
	m := platform.NeuroHPCFromWaitModel(wfit)
	fmt.Printf("queue model fit: wait = %.3f·request + %.0f s  →  %v\n\n", wfit.Alpha, wfit.Gamma, m)

	// --- 3. Plan with every heuristic; pick the winner. ---
	strategies := append([]strategy.Strategy{
		strategy.BruteForce{M: 3000, Mode: strategy.EvalAnalytic},
	}, strategy.StandardHeuristics()...)
	strategies = append(strategies,
		strategy.Discretized{Scheme: 1, N: 1000},
		strategy.Discretized{Scheme: 0, N: 1000},
	)

	fmt.Println("strategy comparison (expected turnaround per job, hours):")
	var best *core.Sequence
	bestCost := math.Inf(1)
	bestName := ""
	for _, st := range strategies {
		s, err := st.Sequence(m, d)
		if err != nil {
			log.Fatalf("%s: %v", st.Name(), err)
		}
		e, err := core.ExpectedCost(m, d, s.Clone())
		if err != nil {
			log.Fatalf("%s: %v", st.Name(), err)
		}
		fmt.Printf("  %-18s %.4f h  (%.3f× omniscient)\n", st.Name(), e, e/m.OmniscientCost(d))
		if e < bestCost {
			best, bestCost, bestName = s, e, st.Name()
		}
	}
	fmt.Printf("\nwinner: %s\n", bestName)
	v, _ := best.Clone().Prefix(5)
	fmt.Printf("request sequence (hours): %.4g\n\n", v)

	// --- 4. Replay a 20,000-job campaign on the simulated platform. ---
	rep, err := platform.Replay(m, d, best, 20000, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign replay (20000 jobs):\n")
	fmt.Printf("  mean turnaround: %.4f h (analytic prediction %.4f h)\n", rep.MeanCost, bestCost)
	fmt.Printf("  mean attempts:   %.3f reservations/job\n", rep.MeanAttempts)
	fmt.Printf("  utilization:     %.1f%% of reserved time used\n", 100*rep.Utilization)
}
