// Package api is the versioned (v1) wire schema of the plan service:
// the request, response, and error DTOs exchanged on /v1/plan and
// /v1/simulate, the stable error-code table, and the header and path
// names shared by every producer and consumer. The backend handlers
// (internal/service), the sharding frontend, the typed client
// (repro/client), and the load generator (cmd/loadgen) all import
// these definitions, so the wire schema has exactly one Go definition.
//
// Compatibility contract: fields are only ever added, never renamed or
// re-typed, within v1; error codes in the table below are stable
// strings clients may switch on.
package api

import (
	"sort"

	"repro"
)

// Paths of the v1 endpoints.
const (
	PathPlan     = "/v1/plan"
	PathSimulate = "/v1/simulate"
	PathHealthz  = "/healthz"
	PathVars     = "/debug/vars"
)

// Header names carrying serving metadata.
const (
	// HeaderCache reports which path served a response: "hit", "miss",
	// or "coalesced". The body never varies with it.
	HeaderCache = "X-Cache"
	// HeaderShard reports the backend shard a frontend routed the
	// request to.
	HeaderShard = "X-Shard"
	// HeaderTenant names the requesting tenant for fair-share
	// admission; empty selects the default tenant.
	HeaderTenant = "X-Tenant"
)

// CostModel mirrors repro.CostModel on the wire: the affine
// reservation cost α·t1 + β·min(t1, t) + γ.
type CostModel struct {
	Alpha float64 `json:"alpha"`
	Beta  float64 `json:"beta"`
	Gamma float64 `json:"gamma"`
}

// Options mirrors repro.Options on the wire. Workers is absent on
// purpose: the server always computes inline (Workers = 1) and scales
// across requests instead.
type Options struct {
	GridM       int     `json:"grid_m,omitempty"`
	SamplesN    int     `json:"samples_n,omitempty"`
	DiscN       int     `json:"disc_n,omitempty"`
	Epsilon     float64 `json:"epsilon,omitempty"`
	Seed        uint64  `json:"seed,omitempty"`
	MonteCarlo  bool    `json:"monte_carlo,omitempty"`
	PreviewLen  int     `json:"preview_len,omitempty"`
	MaxAttempts int     `json:"max_attempts,omitempty"`
}

// PlanRequest is the body of POST /v1/plan.
type PlanRequest struct {
	// Distribution is a spec in the ParseDistribution grammar, e.g.
	// "lognormal(3,0.5)". Any accepted spelling works; the service
	// canonicalizes it and reports the canonical form in the response.
	Distribution string    `json:"distribution"`
	CostModel    CostModel `json:"cost_model"`
	// Strategy is a repro.Strategies() name; empty means brute-force.
	Strategy string  `json:"strategy,omitempty"`
	Options  Options `json:"options,omitempty"`
}

// SimulateRequest is the body of POST /v1/simulate: a plan request
// plus the Monte-Carlo evaluation parameters.
type SimulateRequest struct {
	PlanRequest
	// Samples is the number of sampled jobs (default 1000).
	Samples int `json:"samples,omitempty"`
	// SimSeed drives the evaluation sampler (independent of
	// options.seed, which drives Monte-Carlo *scoring*).
	SimSeed uint64 `json:"sim_seed,omitempty"`
}

// PlanStats is the closed-form operating statistics included in a plan
// response.
type PlanStats struct {
	ExpectedAttempts float64 `json:"expected_attempts"`
	ExpectedReserved float64 `json:"expected_reserved"`
	ExpectedUsed     float64 `json:"expected_used"`
	Utilization      float64 `json:"utilization"`
}

// PlanResponse is the body of a successful POST /v1/plan.
type PlanResponse struct {
	Plan repro.PlanSummary `json:"plan"`
	// CanonicalSpec is the canonical distribution spec the service
	// actually keyed its caches (and consistent-hash routing) with, so
	// clients can observe the normalization of their request spelling.
	CanonicalSpec string     `json:"canonical_spec,omitempty"`
	Stats         *PlanStats `json:"stats,omitempty"`
}

// SimulateResponse is the body of a successful POST /v1/simulate.
type SimulateResponse struct {
	Plan repro.PlanSummary `json:"plan"`
	// CanonicalSpec is the cache/routing key spec, as in PlanResponse.
	CanonicalSpec  string  `json:"canonical_spec,omitempty"`
	Samples        int     `json:"samples"`
	SimSeed        uint64  `json:"sim_seed"`
	NormalizedCost float64 `json:"normalized_cost"`
	StdErr         float64 `json:"std_err"`
}

// ErrorBody is the payload of the error envelope.
type ErrorBody struct {
	// Code is one of the stable strings in the code table (Codes).
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterSeconds accompanies over_quota responses: how long the
	// client should wait before its tenant's token bucket readmits it.
	// The same value is carried in the Retry-After header, which only
	// has whole-second resolution.
	RetryAfterSeconds float64 `json:"retry_after_seconds,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// The stable error codes. The table is append-only: removing or
// renaming a code breaks deployed clients.
const (
	// CodeBadRequest: the request body failed to decode or validate.
	CodeBadRequest = "bad_request"
	// CodeMethodNotAllowed: wrong HTTP method for the endpoint.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeNotFound: unknown path.
	CodeNotFound = "not_found"
	// CodePlanFailed: the planner failed on a valid request.
	CodePlanFailed = "plan_failed"
	// CodeTimeout: the computation exceeded the per-request budget.
	CodeTimeout = "timeout"
	// CodeCanceled: the client went away before the computation ended.
	CodeCanceled = "canceled"
	// CodeOverQuota: the tenant exhausted its fair-share token bucket;
	// retry after ErrorBody.RetryAfterSeconds.
	CodeOverQuota = "over_quota"
	// CodeUnavailable: every backend shard failed or is unhealthy.
	CodeUnavailable = "unavailable"
)

// codeStatus maps each stable code to its HTTP status.
var codeStatus = map[string]int{
	CodeBadRequest:       400,
	CodeMethodNotAllowed: 405,
	CodeNotFound:         404,
	CodePlanFailed:       500,
	CodeTimeout:          504,
	CodeCanceled:         503,
	CodeOverQuota:        429,
	CodeUnavailable:      502,
}

// Status returns the HTTP status an error code is served with;
// unknown codes map to 500.
func Status(code string) int {
	if s, ok := codeStatus[code]; ok {
		return s
	}
	return 500
}

// Codes returns the stable error-code table, sorted.
func Codes() []string {
	out := make([]string, 0, len(codeStatus))
	for c := range codeStatus {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
