package api

import (
	"encoding/json"
	"net/http"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro"
)

// fullPlanRequest populates every PlanRequest field with a non-zero
// value so round trips exercise the whole schema.
func fullPlanRequest() PlanRequest {
	return PlanRequest{
		Distribution: "lognormal(3,0.5)",
		CostModel:    CostModel{Alpha: 0.95, Beta: 1, Gamma: 1.05},
		Strategy:     "equal-probability",
		Options: Options{
			GridM: 100, SamplesN: 200, DiscN: 300, Epsilon: 1e-6,
			Seed: 7, MonteCarlo: true, PreviewLen: 4, MaxAttempts: 9,
		},
	}
}

func fullPlanSummary() repro.PlanSummary {
	var s repro.PlanSummary
	s.Strategy = "brute-force"
	s.Distribution = "exponential(1)"
	s.CostModel.Alpha = 1
	s.CostModel.Beta = 0.5
	s.CostModel.Gamma = 0.25
	s.Reservations = []float64{0.5, 1.25, 3}
	s.ExpectedCost = 1.5
	s.NormalizedCost = 1.2
	return s
}

// roundTrip marshals v, unmarshals the bytes into a fresh value of the
// same type, and requires exact equality.
func roundTrip(t *testing.T, v any) {
	t.Helper()
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal %T: %v", v, err)
	}
	out := reflect.New(reflect.TypeOf(v))
	dec := json.NewDecoder(strings.NewReader(string(blob)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(out.Interface()); err != nil {
		t.Fatalf("strict decode %T: %v\n%s", v, err, blob)
	}
	if got := out.Elem().Interface(); !reflect.DeepEqual(got, v) {
		t.Errorf("%T round trip:\n in  %+v\n out %+v", v, v, got)
	}
}

// TestRoundTripAllDTOs: every wire type survives an encode/decode
// round trip with all fields populated, and the strict decoder accepts
// exactly the fields the encoder emits (no hidden or mismatched tags).
func TestRoundTripAllDTOs(t *testing.T) {
	roundTrip(t, fullPlanRequest())
	roundTrip(t, SimulateRequest{PlanRequest: fullPlanRequest(), Samples: 123, SimSeed: 42})
	roundTrip(t, PlanResponse{
		Plan:          fullPlanSummary(),
		CanonicalSpec: "exponential(1)",
		Stats: &PlanStats{
			ExpectedAttempts: 1.5, ExpectedReserved: 2.5, ExpectedUsed: 2, Utilization: 0.8,
		},
	})
	roundTrip(t, SimulateResponse{
		Plan:          fullPlanSummary(),
		CanonicalSpec: "exponential(1)",
		Samples:       400, SimSeed: 9,
		NormalizedCost: 1.3, StdErr: 0.01,
	})
	var er ErrorResponse
	er.Error = ErrorBody{Code: CodeOverQuota, Message: "tenant over quota", RetryAfterSeconds: 1.5}
	roundTrip(t, er)
}

// TestRoundTripZeroValues: omitempty fields drop cleanly and decode
// back to the zero value.
func TestRoundTripZeroValues(t *testing.T) {
	roundTrip(t, PlanRequest{Distribution: "exp(1)", CostModel: CostModel{Alpha: 1}})
	roundTrip(t, PlanResponse{Plan: fullPlanSummary()})
	roundTrip(t, ErrorResponse{Error: ErrorBody{Code: CodeBadRequest, Message: "m"}})

	blob, err := json.Marshal(PlanRequest{Distribution: "exp(1)", CostModel: CostModel{Alpha: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// The options object is empty, so it must not appear at all.
	if strings.Contains(string(blob), "grid_m") || strings.Contains(string(blob), "strategy") {
		t.Errorf("zero-value fields leaked into the wire form: %s", blob)
	}
}

// TestFieldNamesAreStable pins the v1 JSON field names: renaming any of
// these is a wire-format break, not a refactor.
func TestFieldNamesAreStable(t *testing.T) {
	blob, err := json.Marshal(SimulateRequest{PlanRequest: fullPlanRequest(), Samples: 1, SimSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		`"distribution"`, `"cost_model"`, `"alpha"`, `"beta"`, `"gamma"`,
		`"strategy"`, `"options"`, `"grid_m"`, `"samples_n"`, `"disc_n"`,
		`"epsilon"`, `"seed"`, `"monte_carlo"`, `"preview_len"`,
		`"max_attempts"`, `"samples"`, `"sim_seed"`,
	} {
		if !strings.Contains(string(blob), field) {
			t.Errorf("wire form missing %s:\n%s", field, blob)
		}
	}
	resp, err := json.Marshal(PlanResponse{Plan: fullPlanSummary(), CanonicalSpec: "x",
		Stats: &PlanStats{ExpectedAttempts: 1, ExpectedReserved: 1, ExpectedUsed: 1, Utilization: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		`"plan"`, `"canonical_spec"`, `"stats"`, `"expected_attempts"`,
		`"expected_reserved"`, `"expected_used"`, `"utilization"`,
	} {
		if !strings.Contains(string(resp), field) {
			t.Errorf("response wire form missing %s:\n%s", field, resp)
		}
	}
}

// TestCodeTable: every code maps to a sensible HTTP status, the table
// is sorted and complete, and unknown codes degrade to 500.
func TestCodeTable(t *testing.T) {
	want := map[string]int{
		CodeBadRequest:       http.StatusBadRequest,
		CodeMethodNotAllowed: http.StatusMethodNotAllowed,
		CodeNotFound:         http.StatusNotFound,
		CodePlanFailed:       http.StatusInternalServerError,
		CodeTimeout:          http.StatusGatewayTimeout,
		CodeCanceled:         http.StatusServiceUnavailable,
		CodeOverQuota:        http.StatusTooManyRequests,
		CodeUnavailable:      http.StatusBadGateway,
	}
	codes := Codes()
	if !sort.StringsAreSorted(codes) {
		t.Errorf("Codes() not sorted: %v", codes)
	}
	if len(codes) != len(want) {
		t.Errorf("Codes() = %v, want the %d documented codes", codes, len(want))
	}
	for code, status := range want {
		if got := Status(code); got != status {
			t.Errorf("Status(%s) = %d, want %d", code, got, status)
		}
	}
	if got := Status("no_such_code"); got != http.StatusInternalServerError {
		t.Errorf("Status(unknown) = %d, want 500", got)
	}
}
