package repro

import (
	"encoding/json"
	"math"
	"testing"
)

func TestPlanJSONRoundTrip(t *testing.T) {
	d, _ := Gamma(2, 2)
	p, err := MakePlan(CostModel{Alpha: 1, Beta: 0.5, Gamma: 0.3}, d, StrategyMeanDoubling, Options{PreviewLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := p.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back PlanSummary
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Strategy != StrategyMeanDoubling {
		t.Errorf("strategy = %q", back.Strategy)
	}
	if back.CostModel.Alpha != 1 || back.CostModel.Beta != 0.5 || back.CostModel.Gamma != 0.3 {
		t.Errorf("cost model = %+v", back.CostModel)
	}
	if len(back.Reservations) != 4 {
		t.Errorf("%d reservations", len(back.Reservations))
	}
	if math.Abs(back.ExpectedCost-p.ExpectedCost) > 1e-12 {
		t.Errorf("expected cost %g vs %g", back.ExpectedCost, p.ExpectedCost)
	}
	if math.Abs(back.NormalizedCost-p.NormalizedCost) > 1e-12 {
		t.Errorf("normalized %g vs %g", back.NormalizedCost, p.NormalizedCost)
	}
}

func TestParsePlanSummaryRoundTrip(t *testing.T) {
	d, _ := LogNormal(3, 0.5)
	p, err := MakePlan(ReservationOnly, d, StrategyMeanDoubling, Options{PreviewLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := p.JSON()
	if err != nil {
		t.Fatal(err)
	}
	s, err := ParsePlanSummary(raw)
	if err != nil {
		t.Fatal(err)
	}
	if s.Distribution != "lognormal(3,0.5)" {
		t.Errorf("distribution spec = %q", s.Distribution)
	}
	back, err := ParseDistribution(s.Distribution)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != d.Name() {
		t.Errorf("summary distribution %s, want %s", back.Name(), d.Name())
	}
}

func TestParsePlanSummaryRejectsInvalid(t *testing.T) {
	bad := []string{
		`{`, // malformed JSON
		`{"strategy":"nope","cost_model":{"alpha":1}}`,          // unknown strategy
		`{"distribution":"weird(1)","cost_model":{"alpha":1}}`,  // bad spec
		`{"strategy":"mean-doubling","cost_model":{"alpha":0}}`, // invalid model
	}
	for _, in := range bad {
		if _, err := ParsePlanSummary([]byte(in)); err == nil {
			t.Errorf("%s accepted", in)
		}
	}
}

func TestPlanSummaryOmitsUnspeccableDistribution(t *testing.T) {
	emp, err := Empirical([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	p, err := MakePlan(ReservationOnly, emp, StrategyMeanDoubling, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := p.Summary(); s.Distribution != "" {
		t.Errorf("empirical law got spec %q", s.Distribution)
	}
}

func TestPlanSummaryCopiesReservations(t *testing.T) {
	d, _ := Exponential(1)
	p, err := MakePlan(ReservationOnly, d, StrategyMeanByMean, Options{PreviewLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := p.Summary()
	s.Reservations[0] = -1
	if p.Reservations[0] == -1 {
		t.Error("Summary aliases the plan's reservations")
	}
}
