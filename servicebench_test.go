// Service benchmarks live in an external test package: bench_test.go's
// package repro cannot import internal/service (which imports repro),
// but repro_test can, and `go test -bench` over the root directory
// runs both packages.
package repro_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/service"
)

const benchPlanBody = `{"distribution": "lognormal(3,0.5)", "cost_model": {"alpha": 1}, "strategy": "equal-probability", "options": {"disc_n": 150%s}}`

func benchServer(b *testing.B) *httptest.Server {
	b.Helper()
	ts := httptest.NewServer(service.New(service.Config{Cache: service.CacheConfig{Responses: 1 << 16}}))
	b.Cleanup(ts.Close)
	return ts
}

func postPlan(b *testing.B, url, body string) {
	b.Helper()
	resp, err := http.Post(url+"/v1/plan", "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
}

// BenchmarkPlanServiceCached measures a plan request served from the
// response cache (every iteration is a byte-identical hit).
func BenchmarkPlanServiceCached(b *testing.B) {
	ts := benchServer(b)
	body := fmt.Sprintf(benchPlanBody, "")
	postPlan(b, ts.URL, body) // populate the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postPlan(b, ts.URL, body)
	}
}

// BenchmarkPlanServiceUncached measures a plan request that must
// compute: each iteration varies the scoring seed (part of the
// canonical key, ignored by analytic scoring), forcing a cache miss of
// constant compute cost.
func BenchmarkPlanServiceUncached(b *testing.B) {
	ts := benchServer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postPlan(b, ts.URL, fmt.Sprintf(benchPlanBody, fmt.Sprintf(`, "seed": %d`, i+1)))
	}
}
