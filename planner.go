package repro

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/lru"
	"repro/internal/simulate"
	"repro/internal/strategy"
)

// plannerStateCap bounds how many distributions' derived state (Monte
// Carlo workloads, discretized laws) one Planner retains. Entries
// beyond the cap are evicted least-recently-used; eviction only costs
// recomputation, never correctness.
const plannerStateCap = 128

// Planner is a reusable, concurrency-safe plan factory for one cost
// model and option set. Both are validated and resolved to their
// defaults once, at construction, and are immutable afterwards.
//
// Unlike repeated MakePlan calls, a Planner reuses the expensive
// per-distribution derived state across calls: the Monte-Carlo
// Workload (sorted samples + prefix sums, shared by all brute-force
// scans on one law) and the §4.2 discretization (shared by the
// DP-based strategies). State is keyed by the distribution's canonical
// spec, so two structurally identical laws share one entry;
// distributions without a spec (empirical, mixtures, wrappers) are
// planned correctly but their state is not cached.
//
// All methods are safe for concurrent use; results are byte-for-byte
// identical to the corresponding MakePlan call.
type Planner struct {
	model CostModel
	opts  Options // fully defaulted at construction

	workloads *lru.Cache[string, *simulate.Workload]
	discs     *lru.Cache[string, *dist.Discrete]
}

// NewPlanner validates the cost model, resolves opts through the
// documented defaults, and returns a Planner.
func NewPlanner(m CostModel, opts Options) (*Planner, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &Planner{
		model:     m,
		opts:      opts.withDefaults(),
		workloads: lru.New[string, *simulate.Workload](plannerStateCap),
		discs:     lru.New[string, *dist.Discrete](plannerStateCap),
	}, nil
}

// CostModel returns the validated cost model the Planner was built with.
func (pl *Planner) CostModel() CostModel { return pl.model }

// Options returns the fully defaulted options the Planner resolves
// every plan with.
func (pl *Planner) Options() Options { return pl.opts }

// Plan computes a reservation plan for d using the named strategy,
// reusing any cached per-distribution state.
func (pl *Planner) Plan(d Distribution, strategyName string) (*Plan, error) {
	st, err := pl.opts.resolve(strategyName)
	if err != nil {
		return nil, err
	}
	seq, err := pl.sequence(st, d)
	if err != nil {
		return nil, fmt.Errorf("repro: strategy %s failed: %w", strategyName, err)
	}
	return newPlan(pl.model, d, strategyName, pl.opts, seq)
}

// PlanSpec is Plan over the canonical distribution grammar: the spec
// is parsed with ParseDistribution first.
func (pl *Planner) PlanSpec(distSpec, strategyName string) (*Plan, error) {
	d, err := ParseDistribution(distSpec)
	if err != nil {
		return nil, err
	}
	return pl.Plan(d, strategyName)
}

// sequence runs the strategy with shared state hoisted in where the
// implementation supports it.
func (pl *Planner) sequence(st strategy.Strategy, d Distribution) (*Sequence, error) {
	switch s := st.(type) {
	case strategy.BruteForce:
		// Both modes stream through SearchOn with one reused cursor per
		// worker block: Monte-Carlo against the cached Workload,
		// analytic through the fused Eq.-(4) CostCursor with budget
		// pruning (no per-distribution state to cache — the cursor is
		// rebuilt per block from the distribution's closed forms).
		var wl *simulate.Workload
		if s.Mode == strategy.EvalMonteCarlo {
			wl = pl.workload(d)
		}
		res, err := s.SearchOn(pl.model, d, wl)
		if err != nil {
			return nil, err
		}
		return res.Sequence, nil
	case strategy.Discretized:
		dd, err := pl.discrete(d, s)
		if err != nil {
			return nil, err
		}
		return s.SequenceOn(pl.model, d, dd)
	}
	return st.Sequence(pl.model, d)
}

// workload returns the Monte-Carlo scorer for d under this Planner's
// (SamplesN, Seed), cached per canonical spec. A concurrent miss on
// the same spec may build the workload twice; construction is
// deterministic, so either result is identical and the extra build is
// only wasted work.
func (pl *Planner) workload(d Distribution) *simulate.Workload {
	spec, ok := dist.SpecOf(d)
	if !ok {
		return simulate.NewWorkloadFrom(d, pl.opts.SamplesN, pl.opts.Seed)
	}
	if wl, ok := pl.workloads.Get(spec); ok {
		return wl
	}
	wl := simulate.NewWorkloadFrom(d, pl.opts.SamplesN, pl.opts.Seed)
	pl.workloads.Put(spec, wl)
	return wl
}

// discrete returns the §4.2 discretization of d for the given DP
// strategy, cached per canonical spec and scheme.
func (pl *Planner) discrete(d Distribution, s strategy.Discretized) (*dist.Discrete, error) {
	spec, ok := dist.SpecOf(d)
	if !ok {
		return s.Discretize(d)
	}
	key := spec + "|" + s.Scheme.String()
	if dd, ok := pl.discs.Get(key); ok {
		return dd, nil
	}
	dd, err := s.Discretize(d)
	if err != nil {
		return nil, err
	}
	pl.discs.Put(key, dd)
	return dd, nil
}
