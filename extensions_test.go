package repro

import (
	"math"
	"testing"
)

func TestMixtureFacade(t *testing.T) {
	small, _ := LogNormal(0, 0.3)
	large, _ := LogNormal(2, 0.3)
	mix, err := Mixture([]Distribution{small, large}, []float64{0.7, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	// A plan over the bimodal law works end to end and exploits the
	// modes: the first reservation covers the small mode.
	p, err := MakePlan(ReservationOnly, mix, StrategyBruteForce, Options{GridM: 800})
	if err != nil {
		t.Fatal(err)
	}
	if p.NormalizedCost < 1 || p.NormalizedCost > 4 {
		t.Errorf("mixture plan cost %g", p.NormalizedCost)
	}
	if p.Reservations[0] >= large.Mean() {
		t.Errorf("first reservation %g does not target the small mode", p.Reservations[0])
	}
	if _, err := Mixture(nil, nil); err == nil {
		t.Error("empty mixture accepted")
	}
}

func TestMakeCheckpointPlanFacade(t *testing.T) {
	d, _ := Weibull(1, 0.5)
	pol, err := MakeCheckpointPlan(ReservationOnly, d, CheckpointParams{C: 0.05, R: 0.05}, Options{DiscN: 80})
	if err != nil {
		t.Fatal(err)
	}
	if len(pol.Steps) == 0 || pol.ExpectedCost <= 0 {
		t.Fatalf("policy = %+v", pol)
	}
	// Against the reservation-only plan on the same law, checkpointing
	// must win on this heavy tail.
	plain, err := MakePlan(ReservationOnly, d, StrategyEqualProb, Options{DiscN: 80})
	if err != nil {
		t.Fatal(err)
	}
	if !(pol.ExpectedCost < plain.ExpectedCost) {
		t.Errorf("checkpointing (%g) does not beat plain reservations (%g)", pol.ExpectedCost, plain.ExpectedCost)
	}
	// Validation passes through.
	if _, err := MakeCheckpointPlan(CostModel{}, d, CheckpointParams{}, Options{}); err == nil {
		t.Error("invalid model accepted")
	}
	if _, err := MakeCheckpointPlan(ReservationOnly, d, CheckpointParams{C: -1}, Options{}); err == nil {
		t.Error("negative C accepted")
	}
}

func TestOptimizeProcsFacade(t *testing.T) {
	work, _ := LogNormal(1, 0.4)
	su, err := AmdahlSpeedup(0.05)
	if err != nil {
		t.Fatal(err)
	}
	cost := ElasticCost{NodeAlpha: 1, TimeWeight: 20}
	best, all, err := OptimizeProcs(work, cost, su, []int{1, 4, 16, 64}, Options{GridM: 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("%d choices", len(all))
	}
	if best.Procs != 4 && best.Procs != 16 {
		t.Errorf("best p = %d, want interior", best.Procs)
	}
	if _, err := AmdahlSpeedup(2); err == nil {
		t.Error("bad serial fraction accepted")
	}
	if _, err := PowerLawSpeedup(0.5); err != nil {
		t.Errorf("power law rejected: %v", err)
	}
	if _, _, err := OptimizeProcs(work, cost, nil, []int{1}, Options{}); err == nil {
		t.Error("nil speedup accepted")
	}
}

func TestCheckpointPolicyCostThroughFacade(t *testing.T) {
	d, _ := Exponential(1)
	p := CheckpointParams{C: 0.1, R: 0.1}
	pol, err := MakeCheckpointPlan(ReservationOnly, d, p, Options{DiscN: 60})
	if err != nil {
		t.Fatal(err)
	}
	// Price a concrete job under the policy.
	c, err := pol.Cost(ReservationOnly, p, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if c <= 0 || math.IsInf(c, 0) {
		t.Errorf("cost = %g", c)
	}
}
