package repro

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dist"
)

func TestAdmissionPolicyCoversQuantile(t *testing.T) {
	pl, err := NewPlanner(CostModel{Alpha: 1, Beta: 1, Gamma: 0.1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := dist.MustExponential(1)
	policy, err := pl.AdmissionPolicy(d, StrategyMeanDoubling, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(policy) == 0 {
		t.Fatal("empty policy")
	}
	prev := 0.0
	for i, v := range policy {
		if !(v > prev) {
			t.Fatalf("policy not strictly increasing at %d: %v", i, policy)
		}
		prev = v
	}
	q := d.Quantile(1 - pl.Options().Epsilon)
	if policy[len(policy)-1] < q {
		t.Fatalf("last reservation %g does not cover the (1-ε) quantile %g", policy[len(policy)-1], q)
	}
	// One attempt fewer would not cover it: the prefix is minimal.
	if len(policy) > 1 && policy[len(policy)-2] >= q {
		t.Fatalf("prefix not minimal: %v covers %g one attempt early", policy, q)
	}
}

func TestAdmissionPolicyMaxAttemptsCap(t *testing.T) {
	pl, err := NewPlanner(CostModel{Alpha: 1, Beta: 1, Gamma: 0.1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := dist.MustLogNormal(3, 0.5)
	full, err := pl.AdmissionPolicy(d, StrategyMeanDoubling, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 3 {
		t.Skipf("law too easy to cover (%d attempts); cap test needs >= 3", len(full))
	}
	capped, err := pl.AdmissionPolicy(d, StrategyMeanDoubling, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 2 {
		t.Fatalf("cap ignored: %d attempts", len(capped))
	}
	for i := range capped {
		if capped[i] != full[i] {
			t.Fatalf("capped policy diverges from the full prefix at %d", i)
		}
	}
}

func TestAdmissionPolicyDrivesClusterSimulator(t *testing.T) {
	// End-to-end: plan a strategy, run it as the admission policy of a
	// fleet, and require a clean invariant trace plus the expected
	// kill-resubmit behaviour.
	pl, err := NewPlanner(CostModel{Alpha: 1, Beta: 1, Gamma: 0.1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := dist.MustWeibull(1, 0.5) // heavy tail: multi-attempt policies matter
	policy, err := pl.AdmissionPolicy(d, StrategyEqualProb, 12)
	if err != nil {
		t.Fatal(err)
	}
	spec := cluster.WorkloadSpec{
		Seed:        5,
		Jobs:        4000,
		ArrivalRate: 2,
		Classes: []cluster.JobClass{{
			Name: "weibull", Runtime: d, Weight: 1,
			MinWidth: 1, MaxWidth: 2, Policy: policy,
		}},
	}
	cfg := cluster.Config{
		Nodes:    []int{4, 4},
		Tenants:  []cluster.Tenant{{Name: "all", Budget: math.Inf(1)}},
		Backfill: cluster.BackfillEASY,
		Model:    pl.CostModel(),
	}
	out, err := cluster.Run(spec, cfg, 0, true)
	if err != nil {
		t.Fatalf("cluster run under planner policy: %v", err)
	}
	if out.Stats.Jobs != spec.Jobs {
		t.Fatalf("summarized %d jobs", out.Stats.Jobs)
	}
	if !(out.Stats.MeanAttempts > 1) {
		t.Fatalf("a multi-attempt strategy on a heavy-tailed law should resubmit: MeanAttempts %g", out.Stats.MeanAttempts)
	}
	if out.Stats.MeanCost <= 0 {
		t.Fatalf("attempts must cost something: %g", out.Stats.MeanCost)
	}
}
