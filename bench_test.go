package repro

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5), plus ablation benchmarks for the design choices
// called out in DESIGN.md (Monte-Carlo vs analytic candidate scoring,
// DP sample-count scaling, sequential vs parallel evaluation).
//
// Each Benchmark<TableN>/<FigN> runs the same driver that
// cmd/experiments uses, with the protocol parameters scaled down so a
// full -bench=. pass stays in the minutes range; the harness prints the
// headline numbers once so a bench run doubles as a smoke reproduction.
// Full-scale runs (the paper's M=5000, N=1000, n=1000) are produced by
// cmd/experiments.

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/dist"
	"repro/internal/dp"
	"repro/internal/experiments"
	"repro/internal/online"
	"repro/internal/platform"
	"repro/internal/queuesim"
	"repro/internal/resources"
	"repro/internal/simulate"
	"repro/internal/strategy"
)

// benchCfg is the scaled-down protocol used by the per-table benches.
func benchCfg() experiments.Config {
	return experiments.Config{M: 300, N: 300, DiscN: 250, Epsilon: 1e-7, Seed: 42}
}

var printOnce sync.Once

// BenchmarkTable2 regenerates Table 2 (seven heuristics × nine
// distributions, ReservationOnly).
func BenchmarkTable2(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce.Do(func() {
				fmt.Println()
				fmt.Println(experiments.RenderTable2(rows).String())
			})
		}
	}
}

// BenchmarkTable3 regenerates Table 3 (brute-force t1 vs quantiles).
func BenchmarkTable3(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4 regenerates Table 4 (discretization sample-count
// sweep for both schemes).
func BenchmarkTable4(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3 regenerates the Fig.-3 cost-vs-t1 series for all nine
// distributions.
func BenchmarkFig3(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4 regenerates the Fig.-4 NeuroHPC sweep (heuristics ×
// moment scalings).
func BenchmarkFig4(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExp1 locates the §3.5 constant s1 for Exp(1).
func BenchmarkExp1(b *testing.B) {
	cfg := experiments.Config{M: 1000}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Exp1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation and micro benchmarks -----------------------------------

// BenchmarkBruteForceScoring compares the paper's Monte-Carlo candidate
// scoring against the deterministic Eq.-(4) scoring — the central
// protocol choice of §4.1/§5.1 — at the paper's full scale (M=5000 grid
// points, N=1000 samples), single-worker so the per-candidate cost is
// what is measured.
func BenchmarkBruteForceScoring(b *testing.B) {
	d := dist.MustLogNormal(3, 0.5)
	for _, mode := range []strategy.EvalMode{strategy.EvalMonteCarlo, strategy.EvalAnalytic} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			bf := strategy.BruteForce{M: 5000, N: 1000, Mode: mode, Seed: 1, Workers: 1}
			for i := 0; i < b.N; i++ {
				if _, err := bf.Search(core.ReservationOnly, d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnalyticScoring pits the pre-cursor analytic scoring path
// (materialize each candidate's Sequence, Clone it into ExpectedCost's
// consuming evaluation) against the fused Eq.-(4)/Eq.-(11) CostCursor
// (one survival evaluation per reservation, budget early-abort, zero
// per-candidate allocations) over the same full-scale grid. Both
// variants track the running best so the cursor's pruning is exercised
// the way SearchOn uses it.
func BenchmarkAnalyticScoring(b *testing.B) {
	const gridM = 5000
	d := dist.MustLogNormal(3, 0.5)
	m := core.ReservationOnly
	lo, _ := d.Support()
	hi := core.BoundFirstReservation(m, d)

	b.Run("expected-cost", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			best := 0.0
			bestCost := math.Inf(1)
			for g := 0; g < gridM; g++ {
				t1 := lo + (hi-lo)*float64(g+1)/float64(gridM)
				s := core.SequenceFromFirstTail(m, d, t1, core.DefaultTailEps)
				c, err := core.ExpectedCost(m, d, s.Clone())
				if err != nil || c >= bestCost {
					continue
				}
				best, bestCost = t1, c
			}
			_ = best
		}
	})
	b.Run("cost-cursor", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cur := core.NewCostCursor(m, d, core.DefaultTailEps)
			best := 0.0
			bestCost := math.Inf(1)
			for g := 0; g < gridM; g++ {
				t1 := lo + (hi-lo)*float64(g+1)/float64(gridM)
				c, pruned, err := cur.CostBudget(t1, bestCost)
				if err != nil || pruned || c >= bestCost {
					continue
				}
				best, bestCost = t1, c
			}
			_ = best
		}
	})
}

// BenchmarkWorkloadScoring pits the pre-Workload scoring path (build
// each candidate's sequence, sweep all N samples with CostOnSamples)
// against the precomputed prefix-sum path (sort once, then score each
// candidate through the allocation-free recurrence cursor) over the
// same full-scale grid. This is the tentpole speedup: O(N·L) per
// candidate versus O(L·log N).
func BenchmarkWorkloadScoring(b *testing.B) {
	const gridM, n = 5000, 1000
	d := dist.MustLogNormal(3, 0.5)
	m := core.ReservationOnly
	lo, _ := d.Support()
	hi := core.BoundFirstReservation(m, d)
	samples := simulate.Samples(d, n, 1)

	b.Run("cost-on-samples", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for g := 0; g < gridM; g++ {
				t1 := lo + (hi-lo)*float64(g+1)/float64(gridM)
				s := core.SequenceFromFirstTail(m, d, t1, core.DefaultTailEps)
				// Invalid candidates error out; the scan just skips them.
				_, _ = simulate.CostOnSamples(m, s, samples, 1)
			}
		}
	})
	b.Run("workload", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			wl := simulate.NewWorkload(samples)
			cur := core.NewRecurrenceCursor(m, d, 0, core.DefaultTailEps)
			for g := 0; g < gridM; g++ {
				t1 := lo + (hi-lo)*float64(g+1)/float64(gridM)
				cur.Reset(t1)
				_, _ = wl.Cost(m, &cur)
			}
		}
	})
}

// TestHotPathAllocsZero pins the zero-allocation contract of the
// scoring kernels that the //repro:hotpath annotations (and the
// hotalloc / ifaceescape analyzers plus the cmd/lint -escapes gate)
// enforce statically: scoring a candidate through the fused analytic
// cursor, the recurrence cursor, or the precomputed workload must not
// allocate once the per-block cursors are set up. If this test starts
// failing, the static gate should be failing too — fix the allocation,
// don't widen the baseline.
func TestHotPathAllocsZero(t *testing.T) {
	d := dist.MustLogNormal(3, 0.5)
	m := core.ReservationOnly
	lo, _ := d.Support()
	hi := core.BoundFirstReservation(m, d)
	// Mid-grid candidates, all valid for this law (verified below), so
	// no scoring run hits the uncovered error path — whose record is a
	// deliberate, baselined cold-path allocation.
	t1s := make([]float64, 8)
	for i := range t1s {
		t1s[i] = lo + (hi-lo)*float64(i+4)/16
	}

	t.Run("cost-cursor", func(t *testing.T) {
		cur := core.NewCostCursor(m, d, core.DefaultTailEps)
		for _, t1 := range t1s {
			if _, _, err := cur.CostBudget(t1, math.Inf(1)); err != nil {
				t.Fatalf("t1=%g: %v", t1, err)
			}
		}
		if n := testing.AllocsPerRun(100, func() {
			for _, t1 := range t1s {
				_, _, _ = cur.CostBudget(t1, math.Inf(1))
			}
		}); n != 0 {
			t.Errorf("CostCursor.CostBudget allocates %.1f per scan of %d candidates, want 0", n, len(t1s))
		}
	})

	t.Run("workload", func(t *testing.T) {
		wl := simulate.NewWorkload(simulate.Samples(d, 1000, 1))
		rc := core.NewRecurrenceCursor(m, d, 0, core.DefaultTailEps)
		// Boxing the cursor pointer once per block is the sanctioned
		// pattern; the scoring loop itself must stay allocation-free.
		var cur core.Cursor = &rc
		for _, t1 := range t1s {
			rc.Reset(t1)
			if _, err := wl.Cost(m, cur); err != nil {
				t.Fatalf("t1=%g: %v", t1, err)
			}
		}
		if n := testing.AllocsPerRun(100, func() {
			for _, t1 := range t1s {
				rc.Reset(t1)
				_, _ = wl.Cost(m, cur)
			}
		}); n != 0 {
			t.Errorf("Workload.Cost allocates %.1f per scan of %d candidates, want 0", n, len(t1s))
		}
	})

	t.Run("recurrence-cursor", func(t *testing.T) {
		rc := core.NewRecurrenceCursor(m, d, t1s[0], core.DefaultTailEps)
		if n := testing.AllocsPerRun(100, func() {
			for _, t1 := range t1s {
				rc.Reset(t1)
				for j := 0; j < 32; j++ {
					if _, err := rc.Next(); err != nil {
						break
					}
				}
			}
		}); n != 0 {
			t.Errorf("RecurrenceCursor.Next allocates %.1f per scan, want 0", n)
		}
	})

	// Batched-scoring kernels: the table fill and the seeded cursor
	// paths must stay allocation-free after the table is constructed.
	t.Run("survival-table-fill", func(t *testing.T) {
		tab := core.NewSurvivalTable(d, lo, hi, 64)
		if n := testing.AllocsPerRun(100, func() {
			tab.Fill(0, 64)
		}); n != 0 {
			t.Errorf("SurvivalTable.Fill allocates %.1f per pass, want 0", n)
		}
	})

	// The seeded scans read a 16-point table but consume only its
	// mid-grid band (g = 3..11, the same fractions as t1s), keeping to
	// candidates whose expansion is valid for this law — low grid
	// points break down (ErrNonIncreasing), which is a baselined cold
	// path, not the scoring kernel under test.
	t.Run("cost-cursor-seeded", func(t *testing.T) {
		tab := core.NewSurvivalTable(d, lo, hi, 16)
		tab.Fill(0, 16)
		cur := core.NewCostCursor(m, d, core.DefaultTailEps)
		for g := 3; g < 12; g++ {
			if _, _, err := cur.CostBudgetSeeded(tab.T1(g), math.Inf(1), tab.SF(g), tab.PDF(g)); err != nil {
				t.Fatalf("g=%d: %v", g, err)
			}
		}
		if n := testing.AllocsPerRun(100, func() {
			for g := 3; g < 12; g++ {
				_, _, _ = cur.CostBudgetSeeded(tab.T1(g), math.Inf(1), tab.SF(g), tab.PDF(g))
			}
		}); n != 0 {
			t.Errorf("CostCursor.CostBudgetSeeded allocates %.1f per scan, want 0", n)
		}
	})

	t.Run("recurrence-cursor-seeded", func(t *testing.T) {
		tab := core.NewSurvivalTable(d, lo, hi, 16)
		tab.Fill(0, 16)
		rc := core.NewRecurrenceCursor(m, d, 0, core.DefaultTailEps)
		if n := testing.AllocsPerRun(100, func() {
			for g := 3; g < 12; g++ {
				rc.ResetSeeded(tab.T1(g), tab.SF0(), tab.SF(g), tab.PDF(g))
				for j := 0; j < 32; j++ {
					if _, err := rc.Next(); err != nil {
						break
					}
				}
			}
		}); n != 0 {
			t.Errorf("seeded RecurrenceCursor.Next allocates %.1f per scan, want 0", n)
		}
	})
}

// BenchmarkBruteForceWorkers measures the parallel speedup of the grid
// scan.
func BenchmarkBruteForceWorkers(b *testing.B) {
	d := dist.MustGamma(2, 2)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			bf := strategy.BruteForce{M: 600, N: 300, Seed: 1, Workers: w}
			for i := 0; i < b.N; i++ {
				if _, err := bf.Search(core.ReservationOnly, d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// dpBenchLaw discretizes the benchmark law at n samples.
func dpBenchLaw(b *testing.B, n int) *dist.Discrete {
	b.Helper()
	dd, err := discretize.Discretize(dist.MustLogNormal(3, 0.5), n, 1e-7, discretize.EqualProbability)
	if err != nil {
		b.Fatal(err)
	}
	return dd
}

// BenchmarkDPSolve measures the Theorem-5 dynamic program on its
// default gated sub-quadratic path (SMAWK above the auto threshold)
// across sample counts chosen to expose the asymptotic gap to the
// reference scan: n=256 sits just above the threshold, n=4096 is the
// headline comparison point, n=16384 shows the O(n log n) scaling.
func BenchmarkDPSolve(b *testing.B) {
	for _, n := range []int{256, 4096, 16384} {
		dd := dpBenchLaw(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := dp.Solve(dd, core.ReservationOnly); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDPSolveScan is the retained O(n²) reference scan over the
// same instances — the denominator of the DP speedup claim (compare
// DPSolve/n=4096 against DPSolveScan/n=4096).
func BenchmarkDPSolveScan(b *testing.B) {
	for _, n := range []int{256, 4096, 16384} {
		dd := dpBenchLaw(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := dp.SolveWith(dd, core.ReservationOnly, dp.Config{Algo: dp.AlgoScan}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDPSolveBudget measures the budget-constrained DP (K=8
// attempts) on the fast path vs the reference scan at the headline
// size — each of the K-1 swept layers is an offline argmin problem, so
// the sub-quadratic engines apply layer by layer.
func BenchmarkDPSolveBudget(b *testing.B) {
	const n, k = 4096, 8
	dd := dpBenchLaw(b, n)
	for _, cfg := range []struct {
		name string
		c    dp.Config
	}{
		{"fast", dp.Config{}},
		{"scan", dp.Config{Algo: dp.AlgoScan}},
	} {
		b.Run(fmt.Sprintf("%s/n=%d/k=%d", cfg.name, n, k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := dp.SolveMaxAttemptsWith(dd, core.ReservationOnly, k, cfg.c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatchedScoring measures the survival-lookup batching of the
// brute-force grid scan: one parallel table fill (Survival and PDF at
// every grid point, each computed exactly once) versus per-candidate
// evaluation, under the two modes where most candidates expand past
// their first step — Monte-Carlo scoring and the FullCosts analytic
// scan. Single-worker so the per-candidate cost is what is measured.
func BenchmarkBatchedScoring(b *testing.B) {
	d := dist.MustLogNormal(3, 0.5)
	cases := []struct {
		name string
		bf   strategy.BruteForce
	}{
		{"monte-carlo/plain", strategy.BruteForce{M: 5000, N: 1000, Seed: 1, Workers: 1}},
		{"monte-carlo/batched", strategy.BruteForce{M: 5000, N: 1000, Seed: 1, Workers: 1, Batched: true}},
		{"analytic-full/plain", strategy.BruteForce{M: 5000, Mode: strategy.EvalAnalytic, FullCosts: true, Workers: 1}},
		{"analytic-full/batched", strategy.BruteForce{M: 5000, Mode: strategy.EvalAnalytic, FullCosts: true, Workers: 1, Batched: true}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tc.bf.Search(core.ReservationOnly, d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDiscretize measures both §4.2.1 schemes at the paper's
// n=1000.
func BenchmarkDiscretize(b *testing.B) {
	d := dist.MustWeibull(1, 0.5)
	for _, sch := range []discretize.Scheme{discretize.EqualProbability, discretize.EqualTime} {
		b.Run(sch.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := discretize.Discretize(d, 1000, 1e-7, sch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExpectedCost measures the Eq.-(4) evaluation of a recurrence
// sequence.
func BenchmarkExpectedCost(b *testing.B) {
	b.ReportAllocs()
	d := dist.MustExponential(1)
	m := core.ReservationOnly
	for i := 0; i < b.N; i++ {
		s := core.SequenceFromFirstTail(m, d, 0.74219, core.DefaultTailEps)
		if _, err := core.ExpectedCost(m, d, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonteCarlo measures the Eq.-(13) estimate at the paper's
// N=1000.
func BenchmarkMonteCarlo(b *testing.B) {
	d := dist.MustLogNormal(3, 0.5)
	m := core.ReservationOnly
	s, err := strategy.MeanDoubling{}.Sequence(m, d)
	if err != nil {
		b.Fatal(err)
	}
	samples := simulate.Samples(d, 1000, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simulate.CostOnSamples(m, s.Clone(), samples, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuantiles measures the special-function-backed quantiles
// (Gamma and Beta dominate; they invert incomplete gamma/beta
// functions).
func BenchmarkQuantiles(b *testing.B) {
	for _, d := range dist.Table1() {
		b.Run(d.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := float64(i%997+1) / 998
				_ = d.Quantile(p)
			}
		})
	}
}

// BenchmarkMakePlan measures the public facade end to end.
func BenchmarkMakePlan(b *testing.B) {
	d, err := LogNormal(3, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{StrategyBruteForce, StrategyEqualProb, StrategyMeanByMean} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := MakePlan(ReservationOnly, d, name, Options{GridM: 300, DiscN: 250}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCheckpointSolve measures the checkpoint DPs (the §7
// extension): the O(n³) mixed optimum vs the O(n²) pure strategies.
func BenchmarkCheckpointSolve(b *testing.B) {
	dd, err := discretize.Discretize(dist.MustWeibull(1, 0.5), 80, 1e-6, discretize.EqualProbability)
	if err != nil {
		b.Fatal(err)
	}
	p := checkpoint.Params{C: 0.05, R: 0.05}
	b.Run("mixed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := checkpoint.Solve(dd, core.ReservationOnly, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("all", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := checkpoint.SolveAllCheckpoint(dd, core.ReservationOnly, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("none", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := checkpoint.SolveNoCheckpoint(dd, core.ReservationOnly, p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkElasticOptimize measures the variable-resources extension
// (8 per-p subproblems, each a full brute-force search).
func BenchmarkElasticOptimize(b *testing.B) {
	work := dist.MustLogNormal(1, 0.4)
	su, err := resources.NewAmdahl(0.05)
	if err != nil {
		b.Fatal(err)
	}
	cost := resources.JobCost{NodeAlpha: 1, TimeWeight: 20}
	procs := []int{1, 2, 4, 8, 16, 32, 64, 128}
	st := strategy.BruteForce{M: 300, Mode: strategy.EvalAnalytic}
	for i := 0; i < b.N; i++ {
		if _, _, err := resources.Optimize(work, cost, su, procs, st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlatformReplay measures the job-by-job platform simulator.
func BenchmarkPlatformReplay(b *testing.B) {
	d := dist.MustLogNormal(3, 0.5)
	m := core.ReservationOnly
	s, err := strategy.MeanDoubling{}.Sequence(m, d)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := platform.Replay(m, d, s, 10000, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMixtureQuantile measures the bisection-based mixture
// quantile (the only non-closed-form quantile in the library).
func BenchmarkMixtureQuantile(b *testing.B) {
	m := dist.MustMixture(
		[]dist.Distribution{dist.MustLogNormal(0, 0.3), dist.MustLogNormal(2, 0.3)},
		[]float64{0.6, 0.4})
	for i := 0; i < b.N; i++ {
		p := float64(i%997+1) / 998
		_ = m.Quantile(p)
	}
}

// BenchmarkQueueSimulator measures the discrete-event cluster simulator
// (1000 jobs, EASY backfilling on 16 nodes).
func BenchmarkQueueSimulator(b *testing.B) {
	wl := queuesim.WorkloadConfig{
		Jobs: 1000, MaxJobNodes: 12, ArrivalRate: 1.0,
		RequestedMin: 1, RequestedMax: 60, UseFraction: 0.7, Seed: 5,
	}
	jobs, err := queuesim.GenerateWorkload(wl)
	if err != nil {
		b.Fatal(err)
	}
	for _, backfill := range []bool{false, true} {
		name := "fcfs"
		if backfill {
			name = "easy-backfill"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := queuesim.Simulate(queuesim.Config{Nodes: 16, EnableBackfill: backfill}, jobs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOnlineLearner measures one learn-plan-run episode of 100
// jobs for both estimators.
func BenchmarkOnlineLearner(b *testing.B) {
	truth := dist.MustLogNormal(1, 0.5)
	prior := dist.MustExponential(0.2)
	for _, est := range []online.Estimator{online.Empirical, online.SmoothedLogNormal} {
		b.Run(est.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				l, err := online.NewLearner(core.ReservationOnly, prior, online.Config{Estimator: est, DiscN: 100})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := online.Evaluate(l, truth, 100, uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// clusterBenchWorkload is the shared fleet-simulator benchmark
// scenario: Weibull(1,0.5) runtimes, a three-quantile reservation
// policy, and 64 capacity slots under EASY backfill at ~70% offered
// load.
func clusterBenchWorkload(n int) (cluster.WorkloadSpec, cluster.Config) {
	law := dist.MustWeibull(1, 0.5)
	policy := []float64{law.Quantile(0.5), law.Quantile(0.9), law.Quantile(0.999)}
	spec := cluster.WorkloadSpec{
		Seed: 42, Jobs: n,
		ArrivalRate: 0.7 * 64 / (law.Mean() * 1.5),
		Classes: []cluster.JobClass{{
			Name: "weibull", Runtime: law, Weight: 1,
			MinWidth: 1, MaxWidth: 2, Policy: policy,
		}},
	}
	cfg := cluster.Config{
		Nodes:    []int{16, 16, 16, 16},
		Tenants:  []cluster.Tenant{{Name: "fleet", Budget: math.Inf(1)}},
		Backfill: cluster.BackfillEASY,
		Model:    core.CostModel{Alpha: 1, Beta: 0.5, Gamma: 0.1},
	}
	return spec, cfg
}

func clusterBenchName(n int) string {
	if n >= 1_000_000 {
		return fmt.Sprintf("%dM", n/1_000_000)
	}
	return fmt.Sprintf("%dk", n/1000)
}

// BenchmarkClusterSim measures the fleet simulator end to end — chunked
// streaming generation, the calendar-queue event core, ledger, EASY
// backfill, batched trace hashing, and the constant-memory statistics
// sink — at 10k, 100k, and 1M multi-attempt jobs. Compare against
// BenchmarkClusterSimHeap, the pre-scaling mechanics, on the same
// workload.
func BenchmarkClusterSim(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		spec, cfg := clusterBenchWorkload(n)
		b.Run(clusterBenchName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cluster.RunStream(spec, cfg, 0, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClusterSimHeap is the reference baseline for the scaling
// work: binary-heap event queue, fully buffered generation and results,
// per-event recorder dispatch, and the buffered Summarize — exactly the
// mechanics BenchmarkClusterSim ran before the calendar/streaming
// engine. The trace is bit-identical across the two (the engine parity
// tests pin it); only the speed differs.
func BenchmarkClusterSimHeap(b *testing.B) {
	for _, n := range []int{1_000_000} {
		spec, cfg := clusterBenchWorkload(n)
		cfg.Engine = cluster.EngineHeap
		b.Run(clusterBenchName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				jobs, err := cluster.GenerateJobs(spec, 0)
				if err != nil {
					b.Fatal(err)
				}
				run := cfg
				run.Recorder = cluster.NewTraceHash()
				res, err := cluster.Simulate(run, jobs)
				if err != nil {
					b.Fatal(err)
				}
				cluster.Summarize(run, res)
			}
		})
	}
}

// BenchmarkClusterSweep measures the parallel scenario sweep: a
// (2 strategies × 2 shapes × 2 replicates) matrix of 25k-job streaming
// runs fanned across all cores with a deterministic merge.
func BenchmarkClusterSweep(b *testing.B) {
	spec, cfg := clusterBenchWorkload(25_000)
	law := dist.MustWeibull(1, 0.5)
	sweep := cluster.SweepSpec{
		Workload: spec,
		Strategies: []cluster.SweepStrategy{
			{Name: "q50", Policy: []float64{law.Quantile(0.5), law.Quantile(0.9), law.Quantile(0.999)}},
			{Name: "q90", Policy: []float64{law.Quantile(0.9), law.Quantile(0.999)}},
		},
		Shapes: []cluster.SweepShape{
			{Name: "16x4", Nodes: cfg.Nodes},
			{Name: "64x1", Nodes: cluster.UnitNodes(64)},
		},
		Replicates: 2,
		Base:       cfg,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.RunSweep(sweep, 0); err != nil {
			b.Fatal(err)
		}
	}
}
