package repro

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// AdmissionPolicy bridges the paper's strategies into the cluster
// simulator (internal/cluster): it computes the plan for the given
// distribution and strategy, then materializes the reservation
// sequence as the finite per-job policy a scheduler's admission
// control evaluates attempt by attempt — Job.Policy in the simulator,
// where a job is killed at each reservation and resubmitted with the
// next.
//
// The prefix runs up to and including the first reservation that
// covers the law's (1 − ε) quantile (ε is Options.Epsilon): runtimes
// beyond it carry negligible probability mass, so longer attempts
// would never be exercised. A finite sequence that ends before the
// quantile is used whole (its final attempt may then be killed — the
// simulator reports such jobs as Killed). maxAttempts, when positive,
// additionally caps the policy length, the resubmission limit real
// schedulers impose; it also serves as the fallback horizon if the
// sequence needs more than core.MaxSequenceLen entries to reach the
// quantile.
func (pl *Planner) AdmissionPolicy(d Distribution, strategyName string, maxAttempts int) ([]float64, error) {
	plan, err := pl.Plan(d, strategyName)
	if err != nil {
		return nil, err
	}
	// Clone: FirstCovering/Prefix materialize lazily and must not
	// mutate the sequence shared with the Plan.
	seq := plan.Sequence().Clone()
	q := d.Quantile(1 - pl.opts.Epsilon)
	var n int
	idx, err := seq.FirstCovering(q)
	switch {
	case err == nil:
		n = idx + 1
	case errors.Is(err, core.ErrUncovered):
		// Finite sequence below the quantile: take all of it.
		n = len(seq.Materialized())
	case errors.Is(err, core.ErrTooLong) && maxAttempts > 0:
		n = maxAttempts
	default:
		return nil, fmt.Errorf("repro: admission policy for %s: %w", strategyName, err)
	}
	if maxAttempts > 0 && n > maxAttempts {
		n = maxAttempts
	}
	policy, err := seq.Prefix(n)
	if err != nil {
		return nil, fmt.Errorf("repro: admission policy for %s: %w", strategyName, err)
	}
	if len(policy) == 0 {
		return nil, fmt.Errorf("repro: admission policy for %s is empty", strategyName)
	}
	return policy, nil
}
