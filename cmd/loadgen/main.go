// Command loadgen drives a plan-service deployment with a synthetic
// workload and reports tail latency, cache effectiveness, and shard
// balance. By default it builds an in-process fleet (N backends behind
// the sharding frontend), so a single invocation measures the full
// routing path with no network noise; -target points it at a live
// server instead.
//
// The request stream is deterministic: a seeded Zipf draw over a
// universe of distinct distribution specs (or the Table-1 grid with
// -mix table1), so repeated runs issue the same specs in the same
// order and cache-miss counts are reproducible.
//
// -bench-json writes the scenario's quantiles and ratios as
// benchfmt.Result entries; cmd/bench merges them into BENCH.json where
// the -compare gate tracks them like any micro-benchmark.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/benchfmt"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// run parses flags, executes the scenario(s), and writes the report.
// Human-readable reports go to stdout, except when -bench-json -
// claims stdout for the JSON; then they move to stderr so cmd/bench
// can parse the output.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		target    = fs.String("target", "", "base URL of a live service; empty runs an in-process fleet")
		shards    = fs.Int("shards", 4, "in-process backend shards behind the frontend")
		requests  = fs.Int("requests", 2000, "requests to issue per scenario")
		workers   = fs.Int("workers", 8, "concurrent in-flight requests")
		mix       = fs.String("mix", "zipf", "spec mix: zipf or table1")
		universe  = fs.Int("universe", 100, "zipf mix: number of distinct specs")
		zipfS     = fs.Float64("zipf-s", 1.1, "zipf exponent (>1 skews toward the head)")
		arrivals  = fs.String("arrivals", "closed", "arrival process: closed, poisson, or bursty")
		rate      = fs.Float64("rate", 2000, "poisson/bursty arrivals: long-run requests/sec")
		burst     = fs.Int("burst", 32, "bursty arrivals: requests per burst")
		tenants   = fs.String("tenants", "", "comma-separated tenant names cycled across requests")
		seed      = fs.Uint64("seed", 1, "seed for the spec and arrival streams")
		warm      = fs.Bool("warm", false, "pre-warm the Table-1 grid before measuring")
		smoke     = fs.Bool("smoke", false, "run the fixed 1-2s CI smoke suite and verify its invariants")
		benchJSON = fs.String("bench-json", "", "write benchfmt results to this path ('-' = stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	switch {
	case *requests <= 0, *workers <= 0, *universe <= 0, *shards <= 0:
		return fmt.Errorf("-requests, -workers, -universe, and -shards must be positive")
	case *zipfS <= 0, *rate <= 0, *burst <= 0:
		return fmt.Errorf("-zipf-s, -rate, and -burst must be positive")
	}

	var reports []report
	if *smoke {
		var err error
		reports, err = runSmoke(ctx)
		if err != nil {
			return err
		}
	} else {
		cfg := engineConfig{
			target:   *target,
			shards:   *shards,
			requests: *requests,
			workers:  *workers,
			mix:      *mix,
			universe: *universe,
			zipfS:    *zipfS,
			arrivals: *arrivals,
			rate:     *rate,
			burst:    *burst,
			seed:     *seed,
			warm:     *warm,
		}
		if *tenants != "" {
			cfg.tenants = strings.Split(*tenants, ",")
		}
		if *warm {
			cfg.label = cfg.mix + "_warm"
		}
		rep, err := runEngine(ctx, cfg)
		if err != nil {
			return err
		}
		reports = []report{rep}
	}

	reportDst := stdout
	if *benchJSON == "-" {
		reportDst = stderr
	}
	for _, rep := range reports {
		printReport(reportDst, rep)
	}
	if *benchJSON != "" {
		var results []benchfmt.Result
		for _, rep := range reports {
			results = append(results, rep.benchResults()...)
		}
		return writeBenchJSON(*benchJSON, results, stdout)
	}
	return nil
}

// runSmoke executes the fixed CI scenarios: small enough to finish in
// a second or two, broad enough to exercise routing, warmup, and
// admission. It fails if the deterministic invariants do not hold, so
// check.sh catches routing or cache regressions without a baseline.
func runSmoke(ctx context.Context) ([]report, error) {
	zipf, err := runEngine(ctx, engineConfig{
		label: "smoke_zipf", shards: 2, requests: 400, workers: 4,
		mix: "zipf", universe: 40, seed: 1,
	})
	if err != nil {
		return nil, err
	}
	if zipf.Errors > 0 {
		return nil, fmt.Errorf("smoke zipf: %d errors", zipf.Errors)
	}
	if zipf.Misses != zipf.UniqueSpecs {
		return nil, fmt.Errorf("smoke zipf: %d misses for %d unique specs (routing must pin each spec to one shard)",
			zipf.Misses, zipf.UniqueSpecs)
	}
	warm, err := runEngine(ctx, engineConfig{
		label: "smoke_table1_warm", shards: 2, requests: 100, workers: 4,
		mix: "table1", warm: true, seed: 1,
	})
	if err != nil {
		return nil, err
	}
	if warm.Errors > 0 {
		return nil, fmt.Errorf("smoke warm: %d errors", warm.Errors)
	}
	if warm.Misses != 0 {
		return nil, fmt.Errorf("smoke warm: %d misses after full Table-1 warmup, want 0", warm.Misses)
	}
	return []report{zipf, warm}, nil
}

// printReport renders one scenario's outcome for humans.
func printReport(w io.Writer, rep report) {
	fmt.Fprintf(w, "scenario %s: %d requests in %.2fs\n",
		rep.Label, rep.Requests, rep.ElapsedNS/1e9)
	fmt.Fprintf(w, "  latency  p50 %s  p99 %s  p999 %s\n",
		time.Duration(rep.P50NS), time.Duration(rep.P99NS), time.Duration(rep.P999NS))
	fmt.Fprintf(w, "  cache    %d hits, %d misses, %d coalesced (%d unique specs, %.1f%% served from cache)\n",
		rep.Hits, rep.Misses, rep.Coalesced, rep.UniqueSpecs, 100*rep.hitRatio())
	if rep.Rejected > 0 || rep.Errors > 0 {
		fmt.Fprintf(w, "  admission %d rejected (429), %d errors\n", rep.Rejected, rep.Errors)
	}
	if len(rep.PerShard) > 0 {
		fmt.Fprintf(w, "  shards   %v, imbalance %.2fx\n", rep.PerShard, rep.Imbalance)
	}
}

// writeBenchJSON emits the results as a benchfmt JSON array.
func writeBenchJSON(path string, results []benchfmt.Result, stdout io.Writer) error {
	b, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
