package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/benchfmt"
)

// TestZipfRoutingMissesEqualUniqueSpecs is the ISSUE acceptance
// criterion: against 4 in-process shards, per-spec cache misses equal
// the number of unique specs — consistent-hash routing pins every spec
// to exactly one shard, so no spec is ever computed twice.
func TestZipfRoutingMissesEqualUniqueSpecs(t *testing.T) {
	rep, err := runEngine(context.Background(), engineConfig{
		shards: 4, requests: 600, workers: 8,
		mix: "zipf", universe: 50, seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors > 0 || rep.Rejected > 0 {
		t.Fatalf("errors %d, rejected %d", rep.Errors, rep.Rejected)
	}
	if rep.UniqueSpecs == 0 || rep.UniqueSpecs > 50 {
		t.Fatalf("unique specs = %d", rep.UniqueSpecs)
	}
	if rep.Misses != rep.UniqueSpecs {
		t.Errorf("misses = %d, want %d (one per unique spec)", rep.Misses, rep.UniqueSpecs)
	}
	if got := rep.Hits + rep.Misses + rep.Coalesced; got != rep.Requests {
		t.Errorf("hits+misses+coalesced = %d, want %d", got, rep.Requests)
	}
	if len(rep.PerShard) == 0 {
		t.Error("no per-shard counts — frontend did not set X-Shard")
	}
	if rep.P50NS <= 0 || rep.P999NS < rep.P99NS || rep.P99NS < rep.P50NS {
		t.Errorf("quantiles not monotone: p50 %g p99 %g p999 %g", rep.P50NS, rep.P99NS, rep.P999NS)
	}
}

// TestWarmTable1FullHitRatio: after warmup, a table1 mix is served
// entirely from cache.
func TestWarmTable1FullHitRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("warmup grid is too expensive for -short")
	}
	rep, err := runEngine(context.Background(), engineConfig{
		shards: 2, requests: 81, workers: 4,
		mix: "table1", warm: true, seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors > 0 {
		t.Fatalf("%d errors", rep.Errors)
	}
	if rep.Misses != 0 || rep.Hits != rep.Requests {
		t.Errorf("hits %d misses %d of %d requests, want all hits", rep.Hits, rep.Misses, rep.Requests)
	}
	if got := rep.hitRatio(); got != 1 {
		t.Errorf("hit ratio = %g, want 1", got)
	}
}

// TestSpecStreamDeterministic: the same seed reproduces the same
// request stream; a different seed does not.
func TestSpecStreamDeterministic(t *testing.T) {
	draw := func(seed uint64) []string {
		st, err := newSpecStream(engineConfig{mix: "zipf", universe: 30, zipfS: 1.1, seed: seed}.withDefaults())
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, 200)
		for i := range out {
			out[i], _ = st.next()
		}
		return out
	}
	a, b, c := draw(3), draw(3), draw(4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 3 diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 3 and 4 produced identical streams")
	}
}

// TestSpecStreamZipfSkew: with s > 1 the head spec dominates the tail.
func TestSpecStreamZipfSkew(t *testing.T) {
	st, err := newSpecStream(engineConfig{mix: "zipf", universe: 50, zipfS: 1.3, seed: 1}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for i := 0; i < 5000; i++ {
		s, _ := st.next()
		counts[s]++
	}
	head := counts[st.bodies[0]]
	tail := counts[st.bodies[len(st.bodies)-1]]
	if head <= 5*tail {
		t.Errorf("head drawn %d times, tail %d — not Zipf-skewed", head, tail)
	}
}

// TestSpecStreamTenantsCycle: tenants are assigned round-robin.
func TestSpecStreamTenantsCycle(t *testing.T) {
	st, err := newSpecStream(engineConfig{mix: "table1", tenants: []string{"a", "b", "c"}}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"a", "b", "c", "a", "b"} {
		if _, tenant := st.next(); tenant != want {
			t.Errorf("request %d: tenant %q, want %q", i, tenant, want)
		}
	}
}

func TestSpecStreamRejectsUnknownMix(t *testing.T) {
	if _, err := newSpecStream(engineConfig{mix: "nope"}.withDefaults()); err == nil {
		t.Error("unknown mix accepted")
	}
}

// TestArrivalGaps: the arrival processes produce the advertised shapes.
func TestArrivalGaps(t *testing.T) {
	cfg := engineConfig{requests: 100, rate: 1000, burst: 10, seed: 1}.withDefaults()

	if gaps := arrivalGaps(cfg); gaps != nil { // closed by default
		t.Errorf("closed loop produced gaps: %v", gaps[:3])
	}

	cfg.arrivals = "poisson"
	gaps := arrivalGaps(cfg)
	var total time.Duration
	for _, g := range gaps {
		if g < 0 {
			t.Fatalf("negative gap %v", g)
		}
		total += g
	}
	// 100 exponential gaps at 1000/s have mean total 100ms.
	if total < 20*time.Millisecond || total > 500*time.Millisecond {
		t.Errorf("poisson total gap %v, want around 100ms", total)
	}

	cfg.arrivals = "bursty"
	gaps = arrivalGaps(cfg)
	for i, g := range gaps {
		onBoundary := i > 0 && i%cfg.burst == 0
		if onBoundary && g == 0 {
			t.Errorf("gap %d: burst boundary has no pause", i)
		}
		if !onBoundary && g != 0 {
			t.Errorf("gap %d: mid-burst pause %v", i, g)
		}
	}
}

func TestImbalance(t *testing.T) {
	if got := imbalance(nil); got != 0 {
		t.Errorf("imbalance(nil) = %g", got)
	}
	if got := imbalance(map[string]int{"a": 10, "b": 10}); got != 1 {
		t.Errorf("balanced = %g, want 1", got)
	}
	if got := imbalance(map[string]int{"a": 30, "b": 10}); got != 1.5 {
		t.Errorf("skewed = %g, want 1.5", got)
	}
}

// TestReportBenchResults: the emitted entries carry the gated names
// and deterministic values.
func TestReportBenchResults(t *testing.T) {
	rep := report{
		Label: "zipf", Requests: 200, Hits: 140, Misses: 50, Coalesced: 10,
		P50NS: 1000, P99NS: 5000, P999NS: 9000, Imbalance: 1.2,
	}
	results := rep.benchResults()
	byName := make(map[string]benchfmt.Result)
	for _, r := range results {
		byName[r.Name] = r
	}
	if r := byName["BenchmarkLoadgen/zipf/p99"]; r.NsPerOp != 5000 || r.Iterations != 200 {
		t.Errorf("p99 entry = %+v", r)
	}
	if r := byName["BenchmarkLoadgen/zipf/miss_pct"]; r.NsPerOp != 25 {
		t.Errorf("miss_pct = %g, want 25", r.NsPerOp)
	}
	if r := byName["BenchmarkLoadgen/zipf/served_from_cache_pct"]; r.NsPerOp != 75 {
		t.Errorf("served_from_cache_pct = %g, want 75", r.NsPerOp)
	}
	if r := byName["BenchmarkLoadgen/zipf/shard_imbalance_x100"]; r.NsPerOp != 120 {
		t.Errorf("shard_imbalance_x100 = %g, want 120", r.NsPerOp)
	}
}

// TestRunBenchJSONStdout: -bench-json - prints a parseable result
// array on stdout with the human report diverted to stderr.
func TestRunBenchJSONStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{
		"-shards", "2", "-requests", "60", "-universe", "10", "-bench-json", "-",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	var results []benchfmt.Result
	if err := json.Unmarshal(stdout.Bytes(), &results); err != nil {
		t.Fatalf("stdout is not a result array: %v\n%s", err, stdout.Bytes())
	}
	if len(results) == 0 {
		t.Fatal("no results emitted")
	}
	for _, r := range results {
		if !strings.HasPrefix(r.Name, "BenchmarkLoadgen/") {
			t.Errorf("entry %q lacks the BenchmarkLoadgen/ prefix", r.Name)
		}
	}
	if !strings.Contains(stderr.String(), "scenario zipf") {
		t.Errorf("human report missing from stderr:\n%s", stderr.String())
	}
}

// TestRunRejectsInvalidFlags: bad flag values fail before any load.
func TestRunRejectsInvalidFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-requests", "0"},
		{"-workers", "0"},
		{"-shards", "0"},
		{"-universe", "0"},
		{"-zipf-s", "0"},
		{"-rate", "0"},
		{"-burst", "0"},
		{"-mix", "nope"},
		{"stray"},
	} {
		if err := run(context.Background(), args, new(bytes.Buffer), new(bytes.Buffer)); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

// TestRunSmoke: the check.sh smoke suite passes and reports both
// scenarios.
func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke warms the Table-1 grid; skipped under -short")
	}
	var stdout bytes.Buffer
	if err := run(context.Background(), []string{"-smoke"}, &stdout, new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.Contains(out, "smoke_zipf") || !strings.Contains(out, "smoke_table1_warm") {
		t.Errorf("smoke output missing scenarios:\n%s", out)
	}
}
