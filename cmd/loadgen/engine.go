package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/client"
	"repro/internal/benchfmt"
	"repro/internal/rng"
	"repro/internal/service"
	"repro/service/api"
)

// engineConfig is one load scenario, fully resolved.
type engineConfig struct {
	label string // scenario name for report entries

	// target is an external service base URL; empty builds an
	// in-process fleet of `shards` backends behind a frontend.
	target string
	shards int

	requests int
	workers  int // concurrent in-flight requests (closed-loop bound)

	// mix selects the spec stream: "zipf" draws specs Zipf-distributed
	// over a universe of distinct lognormal laws; "table1" cycles the
	// Table-1 warmup grid.
	mix      string
	universe int     // zipf: distinct specs
	zipfS    float64 // zipf: exponent (> 1 skews toward the head)

	// arrivals selects the arrival process: "closed" (workers issue
	// back to back), "poisson" (exponential inter-arrival gaps at
	// `rate`/sec), or "bursty" (bursts of `burst` with idle gaps
	// keeping the long-run `rate`).
	arrivals string
	rate     float64
	burst    int

	tenants []string // cycled per request; empty = anonymous
	seed    uint64
	warm    bool // precompute the Table-1 grid before measuring

	batchWindow time.Duration // per-shard batch window (0 = off)

	now   func() time.Time
	sleep func(time.Duration)
}

// withDefaults fills the unset fields of a scenario.
func (c engineConfig) withDefaults() engineConfig {
	if c.label == "" {
		c.label = c.mix
	}
	if c.shards <= 0 {
		c.shards = 1
	}
	if c.requests <= 0 {
		c.requests = 1000
	}
	if c.workers <= 0 {
		c.workers = 8
	}
	if c.mix == "" {
		c.mix = "zipf"
	}
	if c.universe <= 0 {
		c.universe = 100
	}
	if c.zipfS == 0 {
		c.zipfS = 1.1
	}
	if c.arrivals == "" {
		c.arrivals = "closed"
	}
	if c.rate <= 0 {
		c.rate = 2000
	}
	if c.burst <= 0 {
		c.burst = 32
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.sleep == nil {
		c.sleep = time.Sleep
	}
	return c
}

// report is one scenario's measured outcome.
type report struct {
	Label       string         `json:"label"`
	Requests    int            `json:"requests"`
	Errors      int            `json:"errors"`
	Rejected    int            `json:"rejected"` // 429 over_quota
	Hits        int            `json:"hits"`
	Misses      int            `json:"misses"`
	Coalesced   int            `json:"coalesced"`
	UniqueSpecs int            `json:"unique_specs"`
	P50NS       float64        `json:"p50_ns"`
	P99NS       float64        `json:"p99_ns"`
	P999NS      float64        `json:"p999_ns"`
	PerShard    map[string]int `json:"per_shard,omitempty"`
	// Imbalance is the max/mean per-shard request ratio (1.0 = perfect).
	Imbalance float64 `json:"imbalance"`
	ElapsedNS float64 `json:"elapsed_ns"`
}

// hitRatio is the fraction of requests served without a fresh
// computation (cache hit or coalesced onto one).
func (r report) hitRatio() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Hits+r.Coalesced) / float64(r.Requests)
}

// benchResults renders the gated BENCH.json entries: latency
// quantiles in ns/op and the deterministic ratio entries in
// percentage points. Names follow the Benchmark* convention so the
// cmd/bench -compare machinery treats them like any micro-benchmark.
func (r report) benchResults() []benchfmt.Result {
	prefix := "BenchmarkLoadgen/" + r.Label + "/"
	mk := func(name string, v float64) benchfmt.Result {
		return benchfmt.Result{Name: prefix + name, Runs: 1, Iterations: float64(r.Requests), NsPerOp: v}
	}
	return []benchfmt.Result{
		mk("p50", r.P50NS),
		mk("p99", r.P99NS),
		mk("p999", r.P999NS),
		mk("miss_pct", 100*float64(r.Misses)/float64(max(r.Requests, 1))),
		mk("served_from_cache_pct", 100*r.hitRatio()),
		mk("shard_imbalance_x100", 100*r.Imbalance),
	}
}

// specStream produces the deterministic request stream: a universe of
// pre-encoded request bodies plus a sampler over it.
type specStream struct {
	bodies  []string  // the universe of distinct request bodies (JSON)
	cum     []float64 // zipf cumulative weights; nil = round-robin
	src     *rng.Source
	tenants []string
	i       int
}

// newSpecStream builds the scenario's request universe and sampler.
// The table1 mix replays the exact Table-1 warmup grid requests (nine
// laws × three cost models), so a warmed fleet serves it at a 100% hit
// ratio; the zipf mix skews draws over `universe` distinct lognormal
// laws under one cost model.
func newSpecStream(cfg engineConfig) (*specStream, error) {
	st := &specStream{src: rng.New(cfg.seed), tenants: cfg.tenants}
	switch cfg.mix {
	case "table1":
		for _, req := range service.WarmupRequests() {
			b, err := json.Marshal(req)
			if err != nil {
				return nil, err
			}
			st.bodies = append(st.bodies, string(b))
		}
	case "zipf":
		for i := 0; i < cfg.universe; i++ {
			sigma := 0.3 + 0.001*float64(i)
			spec := fmt.Sprintf("lognormal(3,%s)", strconv.FormatFloat(sigma, 'g', -1, 64))
			st.bodies = append(st.bodies, string(planBody(spec)))
		}
		st.cum = make([]float64, len(st.bodies))
		total := 0.0
		for i := range st.bodies {
			total += math.Pow(float64(i+1), -cfg.zipfS)
			st.cum[i] = total
		}
	default:
		return nil, fmt.Errorf("unknown mix %q (have zipf, table1)", cfg.mix)
	}
	return st, nil
}

// next returns the request body and tenant for the next request.
func (st *specStream) next() (body, tenantName string) {
	var k int
	if st.cum == nil {
		k = st.i % len(st.bodies)
	} else {
		u := st.src.Float64() * st.cum[len(st.cum)-1]
		k = sort.SearchFloat64s(st.cum, u)
		if k >= len(st.bodies) {
			k = len(st.bodies) - 1
		}
	}
	if len(st.tenants) > 0 {
		tenantName = st.tenants[st.i%len(st.tenants)]
	}
	st.i++
	return st.bodies[k], tenantName
}

// uniqueSpecs counts the distinct request bodies a stream emitted;
// each distinct body is one cache key, so a deterministic router must
// produce exactly this many misses on a cold fleet.
func uniqueSpecs(emitted []string) int {
	seen := make(map[string]bool, len(emitted))
	for _, s := range emitted {
		seen[s] = true
	}
	return len(seen)
}

// buildTarget assembles the handler-or-URL the scenario drives and a
// fresh client for it.
func buildTarget(cfg engineConfig) (*client.Client, http.Handler, error) {
	ccfg := client.Config{
		// Failures are data here, not something to mask with retries.
		MaxRetries: -1,
		Seed:       cfg.seed,
	}
	if cfg.target != "" {
		ccfg.BaseURL = cfg.target
		c, err := client.New(ccfg)
		return c, nil, err
	}
	refs := make([]service.BackendRef, cfg.shards)
	for i := range refs {
		refs[i] = service.BackendRef{
			Name: "shard-" + strconv.Itoa(i),
			Handler: service.New(service.Config{
				Limits: service.LimitsConfig{BatchWindow: cfg.batchWindow},
			}),
		}
	}
	fe, err := service.NewFrontend(service.FrontendConfig{Backends: refs})
	if err != nil {
		return nil, nil, err
	}
	ccfg.BaseURL = "http://fleet"
	ccfg.HTTPClient = &http.Client{Transport: client.HandlerTransport(fe)}
	c, err := client.New(ccfg)
	return c, fe, err
}

// planBody renders the request body for one spec. The small grids keep
// a single compute cheap so scenarios measure serving, not DP solving.
func planBody(spec string) []byte {
	return []byte(fmt.Sprintf(
		`{"distribution": %q, "cost_model": {"alpha": 1}, "strategy": "mean-doubling", "options": {"grid_m": 150, "disc_n": 100}}`,
		spec))
}

// runEngine executes one scenario and aggregates its report.
func runEngine(ctx context.Context, cfg engineConfig) (report, error) {
	cfg = cfg.withDefaults()
	st, err := newSpecStream(cfg)
	if err != nil {
		return report{}, err
	}
	c, handler, err := buildTarget(cfg)
	if err != nil {
		return report{}, err
	}
	if cfg.warm {
		if handler == nil {
			return report{}, fmt.Errorf("-warm requires the in-process fleet (no -target)")
		}
		if _, err := service.Warm(ctx, handler, service.WarmupRequests()); err != nil {
			return report{}, err
		}
	}

	// The dispatcher samples the whole request stream up front (the
	// sampler is sequential by design — one deterministic stream), then
	// paces the sends according to the arrival process.
	type job struct {
		body, tenant string
	}
	jobs := make([]job, cfg.requests)
	emitted := make([]string, cfg.requests)
	for i := range jobs {
		body, tenantName := st.next()
		jobs[i] = job{body: body, tenant: tenantName}
		emitted[i] = body
	}
	gaps := arrivalGaps(cfg)

	var (
		mu        sync.Mutex
		latencies []time.Duration
		rep       = report{Label: cfg.label, Requests: cfg.requests, PerShard: make(map[string]int)}
	)
	ch := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				start := cfg.now()
				raw, err := c.PostRaw(ctx, api.PathPlan, []byte(j.body), j.tenant)
				elapsed := cfg.now().Sub(start)
				mu.Lock()
				latencies = append(latencies, elapsed)
				switch {
				case err != nil:
					rep.Errors++
				case raw.Status == http.StatusTooManyRequests:
					rep.Rejected++
				case raw.Status != http.StatusOK:
					rep.Errors++
				default:
					switch raw.Cache {
					case "hit":
						rep.Hits++
					case "miss":
						rep.Misses++
					case "coalesced":
						rep.Coalesced++
					}
					if raw.Shard != "" {
						rep.PerShard[raw.Shard]++
					}
				}
				mu.Unlock()
			}
		}()
	}
	startAll := cfg.now()
	for i, j := range jobs {
		if gaps != nil && gaps[i] > 0 {
			cfg.sleep(gaps[i])
		}
		select {
		case ch <- j:
		case <-ctx.Done():
			close(ch)
			wg.Wait()
			return rep, ctx.Err()
		}
	}
	close(ch)
	wg.Wait()
	rep.ElapsedNS = float64(cfg.now().Sub(startAll).Nanoseconds())

	rep.UniqueSpecs = uniqueSpecs(emitted)
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	rep.P50NS = quantileNS(latencies, 0.50)
	rep.P99NS = quantileNS(latencies, 0.99)
	rep.P999NS = quantileNS(latencies, 0.999)
	rep.Imbalance = imbalance(rep.PerShard)
	return rep, nil
}

// arrivalGaps precomputes the pre-send pause per request; nil means a
// closed loop with no pacing.
func arrivalGaps(cfg engineConfig) []time.Duration {
	switch cfg.arrivals {
	case "closed":
		return nil
	case "poisson":
		src := rng.New(cfg.seed + 1) // independent of the spec stream
		gaps := make([]time.Duration, cfg.requests)
		for i := range gaps {
			u := src.Float64()
			if u <= 0 {
				u = math.SmallestNonzeroFloat64
			}
			gaps[i] = time.Duration(-math.Log(u) / cfg.rate * float64(time.Second))
		}
		return gaps
	case "bursty":
		// Bursts arrive back to back; the inter-burst gap restores the
		// long-run rate.
		gaps := make([]time.Duration, cfg.requests)
		gap := time.Duration(float64(cfg.burst) / cfg.rate * float64(time.Second))
		for i := range gaps {
			if i > 0 && i%cfg.burst == 0 {
				gaps[i] = gap
			}
		}
		return gaps
	default:
		return nil
	}
}

// quantileNS reads the q-quantile from sorted latencies.
func quantileNS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i].Nanoseconds())
}

// imbalance is max/mean of the per-shard request counts (1.0 when
// perfectly balanced; 0 when unsharded).
func imbalance(perShard map[string]int) float64 {
	if len(perShard) == 0 {
		return 0
	}
	total, maxCount := 0, 0
	for _, n := range perShard {
		total += n
		if n > maxCount {
			maxCount = n
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(perShard))
	return float64(maxCount) / mean
}
