// Command tracefit exercises the paper's data pipeline on the synthetic
// trace substrate (the substitutes for the proprietary Vanderbilt
// neuroscience traces of Fig. 1 and the Intrepid wait-time log of
// Fig. 2):
//
//	tracefit -app vbmqa -runs 5000   # generate + fit a run trace
//	tracefit -app fmriqa
//	tracefit -waittimes              # generate + fit the wait-time log
//
// For run traces it prints the fitted LogNormal parameters next to the
// published ones and the Kolmogorov–Smirnov fit statistic; for the
// wait-time log it prints the fitted affine law next to the published
// (α=0.95, γ=3771.84 s).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/dist"
	"repro/internal/platform"
	"repro/internal/queuesim"
	"repro/internal/trace"
)

func main() {
	var (
		app       = flag.String("app", "vbmqa", "application trace to generate: vbmqa|fmriqa")
		runs      = flag.Int("runs", 5000, "number of runs in the synthetic trace")
		jitter    = flag.Float64("jitter", 0.01, "relative measurement jitter")
		waittimes = flag.Bool("waittimes", false, "fit the wait-time log instead of a run trace")
		groups    = flag.Int("groups", 20, "wait-time log: number of job groups")
		noise     = flag.Float64("noise", 0.05, "wait-time log: relative noise")
		seed      = flag.Uint64("seed", 42, "random seed")
		hist      = flag.Int("hist", 0, "also print a text histogram with this many bins")
		simqueue  = flag.Bool("simqueue", false, "derive the wait-time law from a simulated EASY-backfilling cluster instead of the synthetic log")
		nodes     = flag.Int("nodes", 16, "simulated cluster size (with -simqueue)")
		jobs      = flag.Int("jobs", 3000, "simulated workload size (with -simqueue)")
	)
	flag.Parse()

	if *simqueue {
		if err := deriveWaits(*nodes, *jobs, *groups, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "tracefit:", err)
			os.Exit(1)
		}
		return
	}
	if *waittimes {
		if err := fitWaits(*groups, *noise, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "tracefit:", err)
			os.Exit(1)
		}
		return
	}
	if err := fitRuns(*app, *runs, *jitter, *seed, *hist); err != nil {
		fmt.Fprintln(os.Stderr, "tracefit:", err)
		os.Exit(1)
	}
}

func fitRuns(name string, runs int, jitter float64, seed uint64, histBins int) error {
	var app trace.Application
	switch strings.ToLower(name) {
	case "vbmqa":
		app = trace.VBMQA
	case "fmriqa":
		app = trace.FMRIQA
	default:
		return fmt.Errorf("unknown application %q (want vbmqa or fmriqa)", name)
	}
	samples, err := trace.GenerateRunTrace(app, runs, jitter, seed)
	if err != nil {
		return err
	}
	fitted, err := dist.FitLogNormal(samples)
	if err != nil {
		return err
	}
	mean, sd := dist.SampleMoments(samples)
	fmt.Printf("application:      %s (%d synthetic runs, jitter %.1f%%)\n", app.Name, runs, jitter*100)
	fmt.Printf("sample moments:   mean %.2f s, sd %.2f s\n", mean, sd)
	fmt.Printf("fitted LogNormal: μ = %.4f  σ = %.4f\n", fitted.Mu(), fitted.Sigma())
	fmt.Printf("published fit:    μ = %.4f  σ = %.4f\n", app.Mu, app.Sigma)
	fmt.Printf("KS statistic:     %.4f\n", dist.KSStatistic(samples, fitted))
	fmt.Printf("fitted mean:      %.2f s = %.3f h\n", fitted.Mean(), fitted.Mean()/platform.SecondsPerHour)
	if histBins > 0 {
		h, err := trace.NewHistogram(samples, histBins)
		if err != nil {
			return err
		}
		fmt.Printf("\nhistogram (mode ≈ %.0f s):\n%s", h.Mode(), h.Render(60))
	}
	return nil
}

// deriveWaits runs the first-principles Fig.-2 derivation: simulate an
// EASY-backfilling cluster under a congested workload and fit the
// emergent wait-vs-requested profile.
func deriveWaits(nodes, jobs, groups int, seed uint64) error {
	// Pick the Poisson arrival rate for ≈90% offered load: the
	// log-uniform requested time has mean (b-a)/ln(b/a), jobs use ~85%
	// of it, and node counts average (1+maxJobNodes)/2.
	const reqMin, reqMax, useFrac = 600.0, 72000.0, 0.7
	maxJobNodes := nodes * 3 / 4
	meanReq := (reqMax - reqMin) / math.Log(reqMax/reqMin)
	meanRun := meanReq * (useFrac + 1) / 2
	meanNodes := float64(1+maxJobNodes) / 2
	rate := 0.9 * float64(nodes) / (meanRun * meanNodes)
	wl := queuesim.WorkloadConfig{
		Jobs: jobs, MaxJobNodes: maxJobNodes, ArrivalRate: rate,
		RequestedMin: reqMin, RequestedMax: reqMax, UseFraction: useFrac, Seed: seed,
	}
	model, prof, stats, err := queuesim.DeriveWaitTimeModel(nodes, wl, groups)
	if err != nil {
		return err
	}
	fmt.Printf("simulated cluster: %d nodes, %d jobs, EASY backfilling\n", nodes, jobs)
	fmt.Printf("utilization %.1f%%, %d backfilled, %d killed, mean wait %.0f s\n\n",
		100*stats.Utilization, stats.Backfilled, stats.Killed, stats.MeanWait)
	fmt.Printf("%-14s %-14s %s\n", "requested(s)", "avg wait(s)", "jobs")
	for _, g := range prof {
		fmt.Printf("%-14.0f %-14.0f %d\n", g.RequestedSec, g.AvgWaitSec, g.Jobs)
	}
	fmt.Printf("\nderived affine law:  wait = %.4f·req + %.2f s\n", model.Alpha, model.Gamma)
	fmt.Printf("published Fig.2 fit: wait = %.4f·req + %.2f s\n", trace.Intrepid409.Alpha, trace.Intrepid409.Gamma)
	fmt.Printf("NeuroHPC model:      %v (hours)\n", platform.NeuroHPCFromWaitModel(model))
	return nil
}

func fitWaits(groups int, noise float64, seed uint64) error {
	log, err := trace.GenerateWaitTimeLog(trace.Intrepid409, groups, 600, 72000, noise, seed)
	if err != nil {
		return err
	}
	fit, err := trace.FitWaitTimeModel(log)
	if err != nil {
		return err
	}
	fmt.Printf("wait-time log:  %d groups, noise %.1f%%\n", groups, noise*100)
	fmt.Printf("%-12s %-12s %s\n", "requested(s)", "avg wait(s)", "jobs")
	for _, g := range log {
		fmt.Printf("%-12.0f %-12.0f %d\n", g.RequestedSec, g.AvgWaitSec, g.Jobs)
	}
	fmt.Printf("fitted affine:    wait = %.4f·req + %.2f s\n", fit.Alpha, fit.Gamma)
	fmt.Printf("published fit:    wait = %.4f·req + %.2f s\n", trace.Intrepid409.Alpha, trace.Intrepid409.Gamma)
	m := platform.NeuroHPCFromWaitModel(fit)
	fmt.Printf("NeuroHPC model:   %v (hours)\n", m)
	return nil
}
