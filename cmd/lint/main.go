// Command lint runs the repository's static-analysis suite
// (internal/analysis) over package patterns and reports diagnostics as
// "file:line:col: [rule] message", or as one JSON object per line with
// -json. It exits 0 when clean, 1 when diagnostics were reported, and
// 2 when packages failed to load or type-check.
//
// Usage:
//
//	go run ./cmd/lint ./...
//	go run ./cmd/lint -json ./internal/dist ./cmd/reserve
//
// Findings are suppressed with a "//lint:ignore <rule> <reason>"
// comment on the offending line or the line above, or file-wide with
// "//lint:file-ignore <rule> <reason>". Either form without a reason
// suppresses nothing and is itself reported. -tests adds in-package
// _test.go files to the run. -rules restricts the suite to a
// comma-separated subset.
//
// -escapes switches to the compiler escape-analysis gate: it builds
// the matched packages with -gcflags=-m, collects every heap-escape
// diagnostic inside a //repro:hotpath function, and diffs the set
// against the committed baseline (-baseline, default ESCAPES.json at
// the module root). New escapes fail the gate with exit 1; -write
// regenerates the baseline instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is the -json wire form of one diagnostic.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit one JSON diagnostic object per line")
	withTests := fs.Bool("tests", false, "also analyze in-package _test.go files")
	ruleList := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	listRules := fs.Bool("list", false, "list available rules and exit")
	escapes := fs.Bool("escapes", false, "run the compiler escape-analysis gate over //repro:hotpath functions")
	baseline := fs.String("baseline", "", "escape baseline file (default: ESCAPES.json at the module root)")
	write := fs.Bool("write", false, "with -escapes: rewrite the baseline from a fresh scan instead of diffing")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	suite := analysis.All()
	if *listRules {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *ruleList != "" {
		keep := make(map[string]bool)
		for _, r := range strings.Split(*ruleList, ",") {
			keep[strings.TrimSpace(r)] = true
		}
		var sub []*analysis.Analyzer
		for _, a := range suite {
			if keep[a.Name] {
				sub = append(sub, a)
				delete(keep, a.Name)
			}
		}
		if len(keep) > 0 {
			unknown := make([]string, 0, len(keep))
			for r := range keep {
				unknown = append(unknown, r)
			}
			sort.Strings(unknown)
			fmt.Fprintf(stderr, "lint: unknown rules: %s\n", strings.Join(unknown, ", "))
			return 2
		}
		suite = sub
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := analysis.Dirs(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "lint: %v\n", err)
		return 2
	}
	if len(dirs) == 0 {
		fmt.Fprintln(stderr, "lint: no packages matched")
		return 2
	}
	loader, err := analysis.NewLoader(dirs[0])
	if err != nil {
		fmt.Fprintf(stderr, "lint: %v\n", err)
		return 2
	}
	if *escapes {
		return runEscapes(loader, dirs, *baseline, *write, stdout, stderr)
	}
	loader.IncludeTests = *withTests
	enc := json.NewEncoder(stdout)
	total, failed := 0, false
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintf(stderr, "lint: %v\n", err)
			failed = true
			continue
		}
		for _, d := range analysis.Run(pkg, suite) {
			total++
			if *jsonOut {
				if err := enc.Encode(jsonDiag{
					File:    d.Pos.Filename,
					Line:    d.Pos.Line,
					Col:     d.Pos.Column,
					Rule:    d.Rule,
					Message: d.Message,
				}); err != nil {
					fmt.Fprintf(stderr, "lint: %v\n", err)
					return 2
				}
			} else {
				fmt.Fprintln(stdout, d.String())
			}
		}
	}
	switch {
	case failed:
		return 2
	case total > 0:
		return 1
	}
	return 0
}

// runEscapes implements the -escapes mode: scan, then either rewrite
// the baseline (-write) or diff against it. Both new escapes and stale
// baseline entries fail the gate — a stale entry is a free pass for
// the next regression with the same message.
func runEscapes(loader *analysis.Loader, dirs []string, baselinePath string, write bool, stdout, stderr io.Writer) int {
	if loader.ModuleDir == "" {
		fmt.Fprintln(stderr, "lint: -escapes requires a module root (no go.mod found)")
		return 2
	}
	if baselinePath == "" {
		baselinePath = filepath.Join(loader.ModuleDir, "ESCAPES.json")
	}
	recs, err := analysis.EscapeScan(loader.ModuleDir, dirs)
	if err != nil {
		fmt.Fprintf(stderr, "lint: %v\n", err)
		return 2
	}
	if write {
		if err := analysis.WriteEscapeBaseline(baselinePath, recs); err != nil {
			fmt.Fprintf(stderr, "lint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "lint: wrote %d escape record(s) to %s\n", len(recs), baselinePath)
		return 0
	}
	base, err := analysis.ReadEscapeBaseline(baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "lint: %v\n", err)
		return 2
	}
	unexpected, stale := analysis.DiffEscapes(recs, base)
	for _, r := range unexpected {
		fmt.Fprintf(stdout, "escape not in baseline: %s\n", r)
	}
	for _, r := range stale {
		fmt.Fprintf(stdout, "stale baseline entry (escape no longer reported): %s\n", r)
	}
	if len(unexpected)+len(stale) > 0 {
		fmt.Fprintf(stderr, "lint: escape gate failed (%d new, %d stale); if the new escapes are deliberate cold paths, regenerate with -escapes -write and commit %s\n",
			len(unexpected), len(stale), filepath.Base(baselinePath))
		return 1
	}
	fmt.Fprintf(stdout, "lint: escape gate clean (%d baselined escape(s) in hot-path functions)\n", len(recs))
	return 0
}
