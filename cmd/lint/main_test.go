package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

const fixtureDir = "../../internal/analysis/testdata/src/floatcmp"

func TestRunTextOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{fixtureDir}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (fixture has known findings); stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "[floatcmp]") {
		t.Fatalf("text output missing [floatcmp] tag:\n%s", out.String())
	}
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if parts := strings.SplitN(line, ":", 4); len(parts) != 4 {
			t.Errorf("line not in file:line:col: message form: %q", line)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", fixtureDir}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errb.String())
	}
	sc := bufio.NewScanner(&out)
	n := 0
	for sc.Scan() {
		n++
		var d struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Rule    string `json:"rule"`
			Message string `json:"message"`
		}
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("line %d is not a JSON diagnostic: %v\n%s", n, err, sc.Text())
		}
		if d.File == "" || d.Line == 0 || d.Rule != "floatcmp" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
	if n == 0 {
		t.Fatal("JSON mode produced no diagnostics for a fixture with known findings")
	}
}

func TestRunCleanPackage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"../../internal/rng"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0 for a clean package; output:\n%s%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean package produced output:\n%s", out.String())
	}
}

func TestRunRuleSubset(t *testing.T) {
	var out, errb bytes.Buffer
	// The floatcmp fixture is clean under every other rule.
	if code := run([]string{"-rules", "maporder,synccheck", fixtureDir}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; output:\n%s%s", code, out.String(), errb.String())
	}
}

func TestRunUnknownRule(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-rules", "nosuchrule", fixtureDir}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2 for unknown rule", code)
	}
	if !strings.Contains(errb.String(), "nosuchrule") {
		t.Fatalf("stderr does not name the unknown rule: %s", errb.String())
	}
}

func TestRunListRules(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, rule := range []string{"floatcmp", "rngdiscipline", "maporder", "errcheck-lite", "synccheck",
		"hotalloc", "ifaceescape", "mutexcopy", "valuerecv"} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-list output missing rule %s:\n%s", rule, out.String())
		}
	}
}

// lintRun executes run() capturing both streams.
func lintRun(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestRunLoadError pins exit code 2 for packages that fail to
// type-check, including when mixed with packages that merely have
// findings: load errors dominate.
func TestRunLoadError(t *testing.T) {
	code, _, errb := lintRun(t, "testdata/broken")
	if code != 2 {
		t.Errorf("broken package: exit %d, want 2", code)
	}
	if !strings.Contains(errb, "undefinedSymbol") {
		t.Errorf("stderr does not name the type error:\n%s", errb)
	}
	if code, _, _ := lintRun(t, "testdata/dirty", "testdata/broken"); code != 2 {
		t.Errorf("dirty+broken: exit %d, want 2", code)
	}
	if code, out, _ := lintRun(t, "testdata/dirty"); code != 1 || !strings.Contains(out, "[floatcmp]") {
		t.Errorf("dirty alone: exit %d, want 1 with a floatcmp finding:\n%s", code, out)
	}
	if code, _, _ := lintRun(t, "testdata/clean"); code != 0 {
		t.Errorf("clean package: exit %d, want 0", code)
	}
}

// TestEscapeGateDetectsInjectedEscape runs the -escapes gate end to end
// against a standalone fixture module carrying one known heap escape in
// a //repro:hotpath function: no baseline fails with exit 1 naming the
// function, -write baselines it, the rerun is clean, and a stale
// baseline entry fails again.
func TestEscapeGateDetectsInjectedEscape(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "ESCAPES.json")

	code, out, _ := lintRun(t, "-escapes", "-baseline", baseline, "testdata/escapemod")
	if code != 1 {
		t.Fatalf("no baseline: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "Leak") || !strings.Contains(out, "moved to heap: x") {
		t.Errorf("gate output does not attribute the escape to Leak:\n%s", out)
	}
	if strings.Contains(out, "Stay") || strings.Contains(out, "Unannotated") {
		t.Errorf("gate attributed escapes to the wrong functions:\n%s", out)
	}

	if code, out, _ := lintRun(t, "-escapes", "-baseline", baseline, "-write", "testdata/escapemod"); code != 0 {
		t.Fatalf("-write: exit %d, want 0\n%s", code, out)
	}
	if code, out, _ := lintRun(t, "-escapes", "-baseline", baseline, "testdata/escapemod"); code != 0 {
		t.Fatalf("baselined rerun: exit %d, want 0\n%s", code, out)
	}

	// Inject a stale record: an entry the compiler no longer reports
	// must fail the gate, or the baseline could mask a regression with
	// the same message later.
	recs, err := analysis.ReadEscapeBaseline(baseline)
	if err != nil {
		t.Fatal(err)
	}
	recs = append(recs, analysis.EscapeRecord{Pkg: ".", Func: "Stay", Text: "moved to heap: x"})
	if err := analysis.WriteEscapeBaseline(baseline, recs); err != nil {
		t.Fatal(err)
	}
	code, out, _ = lintRun(t, "-escapes", "-baseline", baseline, "testdata/escapemod")
	if code != 1 {
		t.Fatalf("stale baseline: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "stale baseline entry") {
		t.Errorf("stale entry not reported:\n%s", out)
	}
}

// TestEscapesBaselineFresh fails when the committed ESCAPES.json no
// longer matches a fresh scan of the repository: the baseline must
// always be reproducible by -escapes -write, so it can never mask a
// new escape.
func TestEscapesBaselineFresh(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the module; skipped in -short")
	}
	if code, out, errb := lintRun(t, "-escapes", "../../..."); code != 0 {
		t.Errorf("escape gate not clean against committed ESCAPES.json (exit %d); regenerate with: go run ./cmd/lint -escapes -write\n%s%s",
			code, out, errb)
	}
	// The committed file must also be byte-stable under a rewrite
	// (sorted records, fixed header), so -write never produces diff
	// noise.
	path := filepath.Join("..", "..", "ESCAPES.json")
	committed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := analysis.ReadEscapeBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	rewritten := filepath.Join(t.TempDir(), "ESCAPES.json")
	if err := analysis.WriteEscapeBaseline(rewritten, recs); err != nil {
		t.Fatal(err)
	}
	fresh, err := os.ReadFile(rewritten)
	if err != nil {
		t.Fatal(err)
	}
	if string(committed) != string(fresh) {
		t.Errorf("committed ESCAPES.json is not byte-stable under rewrite")
	}
}
