package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const fixtureDir = "../../internal/analysis/testdata/src/floatcmp"

func TestRunTextOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{fixtureDir}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (fixture has known findings); stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "[floatcmp]") {
		t.Fatalf("text output missing [floatcmp] tag:\n%s", out.String())
	}
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if parts := strings.SplitN(line, ":", 4); len(parts) != 4 {
			t.Errorf("line not in file:line:col: message form: %q", line)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", fixtureDir}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errb.String())
	}
	sc := bufio.NewScanner(&out)
	n := 0
	for sc.Scan() {
		n++
		var d struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Rule    string `json:"rule"`
			Message string `json:"message"`
		}
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("line %d is not a JSON diagnostic: %v\n%s", n, err, sc.Text())
		}
		if d.File == "" || d.Line == 0 || d.Rule != "floatcmp" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
	if n == 0 {
		t.Fatal("JSON mode produced no diagnostics for a fixture with known findings")
	}
}

func TestRunCleanPackage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"../../internal/rng"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0 for a clean package; output:\n%s%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean package produced output:\n%s", out.String())
	}
}

func TestRunRuleSubset(t *testing.T) {
	var out, errb bytes.Buffer
	// The floatcmp fixture is clean under every other rule.
	if code := run([]string{"-rules", "maporder,synccheck", fixtureDir}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; output:\n%s%s", code, out.String(), errb.String())
	}
}

func TestRunUnknownRule(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-rules", "nosuchrule", fixtureDir}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2 for unknown rule", code)
	}
	if !strings.Contains(errb.String(), "nosuchrule") {
		t.Fatalf("stderr does not name the unknown rule: %s", errb.String())
	}
}

func TestRunListRules(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, rule := range []string{"floatcmp", "rngdiscipline", "maporder", "errcheck-lite", "synccheck"} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-list output missing rule %s:\n%s", rule, out.String())
		}
	}
}
