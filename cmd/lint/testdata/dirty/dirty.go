// Package dirty is a lint fixture with one floatcmp finding.
package dirty

// Equal compares floats exactly, which floatcmp flags.
func Equal(a, b float64) bool { return a == b }
