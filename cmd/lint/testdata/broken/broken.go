// Package broken is a lint fixture that fails type-checking.
package broken

func f() int { return undefinedSymbol }
