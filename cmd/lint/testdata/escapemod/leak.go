// Package escapemod is a standalone fixture module for the cmd/lint
// -escapes end-to-end test: Leak carries one known heap escape inside
// a //repro:hotpath function, Stay carries none.
package escapemod

// Leak forces its local onto the heap by returning its address.
//
//repro:hotpath
func Leak(n int) *int {
	x := n
	return &x
}

// Stay allocates nothing; the escape gate must not attribute anything
// to it.
//
//repro:hotpath
func Stay(n int) int {
	x := n
	return x * 2
}

// Unannotated escapes too, but outside any hot-path function the gate
// must ignore it.
func Unannotated(n int) *int {
	x := n
	return &x
}
