module escapemod

go 1.21
