// Package clean is a lint fixture with no findings.
package clean

// Add is trivially clean under every analyzer.
func Add(a, b int) int { return a + b }
