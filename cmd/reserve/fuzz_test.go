package main

import (
	"math"
	"testing"
)

// FuzzParseDistribution hardens the CLI distribution parser: arbitrary
// input must either produce a usable distribution or a clean error —
// never a panic, NaN mean, or invalid support.
func FuzzParseDistribution(f *testing.F) {
	seeds := []string{
		"exponential(1)", "exp(0.5)", "weibull(1,0.5)", "gamma(2,2)",
		"lognormal(3,0.5)", "truncnormal(8,1.41,0)", "pareto(1.5,3)",
		"uniform(10,20)", "beta(2,2)", "boundedpareto(1,20,2.1)",
		"", "()", "exp", "exp()", "exp(,)", "exp(1,2,3)", "exp(1e309)",
		"exp(-1)", "exp(nan)", "exp(inf)", "uniform(20,10)",
		"EXPONENTIAL(1)", " beta ( 2 , 2 ) ", "beta(2,2))", "((",
		"lognormal(0,0)", "pareto(0,3)", "weird(1)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		d, err := ParseDistribution(in)
		if err != nil {
			if d != nil {
				t.Errorf("%q: non-nil distribution with error %v", in, err)
			}
			return
		}
		if d == nil {
			t.Fatalf("%q: nil distribution without error", in)
		}
		m := d.Mean()
		if math.IsNaN(m) || m < 0 {
			t.Errorf("%q: invalid mean %g", in, m)
		}
		lo, hi := d.Support()
		if math.IsNaN(lo) || lo < 0 || !(hi > lo) {
			t.Errorf("%q: invalid support [%g, %g]", in, lo, hi)
		}
		// The quantile at the median must be inside the support.
		med := d.Quantile(0.5)
		if med < lo-1e-9 || (!math.IsInf(hi, 1) && med > hi+1e-9) {
			t.Errorf("%q: median %g outside [%g, %g]", in, med, lo, hi)
		}
	})
}
