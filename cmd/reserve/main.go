// Command reserve computes a reservation strategy for a stochastic job:
//
//	reserve -dist 'lognormal(3,0.5)' -strategy brute-force
//	reserve -dist 'uniform(10,20)' -alpha 1 -beta 0 -gamma 0
//	reserve -dist 'exponential(1)' -strategy mean-doubling -job 2.5
//	reserve -dist 'lognormal(7.1128,0.2039)' -neurohpc -unit-hours
//
// It prints the reservation sequence, its exact expected cost (Eq. 4 of
// the paper), the normalized cost against the omniscient scheduler,
// and — with -job t — the concrete cost of running a job of duration t.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"repro"
)

func main() {
	var (
		distSpec = flag.String("dist", "", "distribution, e.g. 'exponential(1)', 'lognormal(3,0.5)', 'uniform(10,20)', 'weibull(1,0.5)', 'gamma(2,2)', 'truncnormal(8,1.414,0)', 'pareto(1.5,3)', 'beta(2,2)', 'boundedpareto(1,20,2.1)'")
		strat    = flag.String("strategy", repro.StrategyBruteForce, "strategy: "+strings.Join(repro.Strategies(), "|"))
		alpha    = flag.Float64("alpha", 1, "cost coefficient on the reserved duration")
		beta     = flag.Float64("beta", 0, "cost coefficient on the used duration")
		gamma    = flag.Float64("gamma", 0, "per-reservation overhead")
		neuro    = flag.Bool("neurohpc", false, "use the NeuroHPC cost model (α=0.95, β=1, γ=1.05h); overrides -alpha/-beta/-gamma")
		job      = flag.Float64("job", math.NaN(), "also price a job of this exact duration")
		gridM    = flag.Int("M", 5000, "brute-force grid points")
		discN    = flag.Int("n", 1000, "discretization samples")
		preview  = flag.Int("preview", 10, "reservations to print")
		asJSON   = flag.Bool("json", false, "emit the plan as JSON instead of text")
	)
	flag.Parse()

	if *distSpec == "" {
		fmt.Fprintln(os.Stderr, "reserve: -dist is required")
		flag.Usage()
		os.Exit(2)
	}
	d, err := repro.ParseDistribution(*distSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reserve:", err)
		os.Exit(1)
	}
	m := repro.CostModel{Alpha: *alpha, Beta: *beta, Gamma: *gamma}
	if *neuro {
		m = repro.NeuroHPC()
	}
	plan, err := repro.MakePlan(m, d, *strat, repro.Options{GridM: *gridM, DiscN: *discN, PreviewLen: *preview})
	if err != nil {
		fmt.Fprintln(os.Stderr, "reserve:", err)
		os.Exit(1)
	}

	if *asJSON {
		raw, err := plan.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "reserve:", err)
			os.Exit(1)
		}
		fmt.Println(string(raw))
		return
	}

	fmt.Printf("distribution:    %s (mean %.4g)\n", d.Name(), d.Mean())
	fmt.Printf("cost model:      %v\n", m)
	fmt.Printf("strategy:        %s\n", *strat)
	fmt.Printf("reservations:    %.5g\n", plan.Reservations)
	fmt.Printf("expected cost:   %.5g\n", plan.ExpectedCost)
	fmt.Printf("normalized cost: %.4f (1.0 = omniscient)\n", plan.NormalizedCost)
	if ok, err := plan.ReservedVsOnDemand(4); err == nil {
		fmt.Printf("vs on-demand ×4: reservation worthwhile = %v\n", ok)
	}
	if st, err := plan.Stats(); err == nil {
		fmt.Printf("attempts:        %.3f expected (P1=%.0f%%, P2=%.0f%%)\n",
			st.ExpectedAttempts, 100*attemptProb(st, 0), 100*attemptProb(st, 1))
		fmt.Printf("utilization:     %.1f%% of reserved time used\n", 100*st.Utilization)
	}
	if p99, err := plan.CostQuantile(0.99); err == nil {
		fmt.Printf("p99 cost:        %.5g\n", p99)
	}
	if !math.IsNaN(*job) {
		cost, attempts, err := plan.CostFor(*job)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reserve: pricing job:", err)
			os.Exit(1)
		}
		fmt.Printf("job of %.4g:     cost %.5g over %d reservation(s)\n", *job, cost, attempts)
	}
}

// attemptProb safely indexes the attempt-count distribution.
func attemptProb(st repro.PlanStats, i int) float64 {
	if i < len(st.AttemptProbs) {
		return st.AttemptProbs[i]
	}
	return 0
}
