package main

import (
	"math"
	"strings"
	"testing"
)

func TestParseDistributionValid(t *testing.T) {
	cases := []struct {
		in       string
		wantName string
		wantMean float64
	}{
		{"exponential(1)", "Exponential", 1},
		{"exp(2)", "Exponential", 0.5},
		{"weibull(1,0.5)", "Weibull", 2},
		{"gamma(2,2)", "Gamma", 1},
		{"lognormal(3,0.5)", "LogNormal", math.Exp(3.125)},
		{"truncnormal(8,1.4142135623730951,0)", "TruncatedNormal", 0}, // mean checked loosely below
		{"pareto(1.5,3)", "Pareto", 2.25},
		{"uniform(10,20)", "Uniform", 15},
		{"beta(2,2)", "Beta", 0.5},
		{"boundedpareto(1,20,2.1)", "BoundedPareto", 0},
		{"  Uniform( 10 , 20 ) ", "Uniform", 15}, // whitespace and case
	}
	for _, c := range cases {
		d, err := ParseDistribution(c.in)
		if err != nil {
			t.Fatalf("%q: %v", c.in, err)
		}
		if !strings.Contains(d.Name(), c.wantName) {
			t.Errorf("%q parsed to %s", c.in, d.Name())
		}
		if c.wantMean > 0 && math.Abs(d.Mean()-c.wantMean) > 1e-9*c.wantMean {
			t.Errorf("%q: mean %g, want %g", c.in, d.Mean(), c.wantMean)
		}
	}
}

func TestParseDistributionInvalid(t *testing.T) {
	bad := []string{
		"",
		"exponential",         // no parens
		"exponential(",        // unbalanced
		"exponential()",       // missing param
		"exponential(1,2)",    // too many params
		"exponential(zero)",   // non-numeric
		"exponential(-1)",     // constructor rejects
		"uniform(20,10)",      // constructor rejects
		"nosuchlaw(1)",        // unknown
		"weibull(1)",          // arity
		"boundedpareto(1,20)", // arity
	}
	for _, in := range bad {
		if _, err := ParseDistribution(in); err == nil {
			t.Errorf("%q accepted", in)
		}
	}
}
