// Command experiments regenerates every table and figure of the
// paper's evaluation section (§5):
//
//	experiments -run table1   # distribution properties and bounds
//	experiments -run table2   # heuristic comparison, ReservationOnly
//	experiments -run table3   # brute-force t1 vs quantile guesses
//	experiments -run table4   # discretization sample-count sweep
//	experiments -run fig3     # cost vs t1 series (CSV per distribution)
//	experiments -run fig4     # NeuroHPC scenario with scaled moments
//	experiments -run exp1     # §3.5: optimal s1 for Exp(1)
//	experiments -run all      # everything above
//
// The default parameters are the paper's (M=5000 grid points, N=1000
// Monte-Carlo samples, n=1000 discretization samples, ε=1e-7); pass
// -analytic to score with the exact Eq.-(4) value instead of the
// paper's Monte-Carlo protocol, and -csv DIR to also write CSV files.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/dp"
	"repro/internal/experiments"
	"repro/internal/tablefmt"
	"repro/internal/trace"
)

func main() {
	var (
		run      = flag.String("run", "all", "experiment to run: table1|table2|table3|table4|fig3|fig4|exp1|ablations|all")
		gridM    = flag.Int("M", 5000, "brute-force grid points")
		samplesN = flag.Int("N", 1000, "Monte-Carlo samples")
		discN    = flag.Int("n", 1000, "discretization samples")
		epsilon  = flag.Float64("eps", 1e-7, "truncation quantile")
		seed     = flag.Uint64("seed", 42, "random seed")
		analytic = flag.Bool("analytic", false, "score with the exact Eq.(4) value instead of Monte Carlo")
		csvDir   = flag.String("csv", "", "also write CSV files into this directory")
		report   = flag.String("report", "", "write a full Markdown report to this file and exit")
		dpVerify = flag.Bool("dpverify", false, "cross-check every DP row computed by the sub-quadratic solvers against the reference scan (debug; slow)")
	)
	flag.Parse()
	if *dpVerify {
		dp.SetVerifyRows(true)
	}

	cfg := experiments.Config{
		M: *gridM, N: *samplesN, DiscN: *discN,
		Epsilon: *epsilon, Seed: *seed, Analytic: *analytic,
	}
	if *report != "" {
		out, err := experiments.FullReport(cfg)
		if err == nil {
			err = os.WriteFile(*report, []byte(out), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println("report written to", *report)
		return
	}
	if err := runAll(cfg, strings.ToLower(*run), *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func runAll(cfg experiments.Config, which, csvDir string) error {
	want := func(name string) bool { return which == "all" || which == name }
	emit := func(name string, t *tablefmt.Table) error {
		fmt.Println(t.String())
		if csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(csvDir, name+".csv"))
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			_ = f.Close()
			return err
		}
		return f.Close()
	}

	any := false
	if want("table1") {
		any = true
		if err := emit("table1", experiments.Table1Properties()); err != nil {
			return err
		}
	}
	if want("table2") {
		any = true
		rows, err := experiments.Table2(cfg)
		if err != nil {
			return err
		}
		if err := emit("table2", experiments.RenderTable2(rows)); err != nil {
			return err
		}
	}
	if want("table3") {
		any = true
		rows, err := experiments.Table3(cfg)
		if err != nil {
			return err
		}
		if err := emit("table3", experiments.RenderTable3(rows)); err != nil {
			return err
		}
	}
	if want("table4") {
		any = true
		rows, err := experiments.Table4(cfg)
		if err != nil {
			return err
		}
		if err := emit("table4", experiments.RenderTable4(rows)); err != nil {
			return err
		}
	}
	if want("fig3") {
		any = true
		series, err := experiments.Fig3(cfg)
		if err != nil {
			return err
		}
		for _, s := range series {
			name := "fig3_" + strings.ToLower(s.Distribution)
			t := experiments.RenderFig3(s)
			if csvDir != "" {
				if err := os.MkdirAll(csvDir, 0o755); err != nil {
					return err
				}
				f, err := os.Create(filepath.Join(csvDir, name+".csv"))
				if err != nil {
					return err
				}
				if err := t.WriteCSV(f); err != nil {
					_ = f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
			}
			fmt.Printf("Fig. 3 (%s): %d candidates, best t1 = %.4g\n",
				s.Distribution, len(s.T1), s.BestT1)
			// Clip extreme candidates for display so the basin around
			// the optimum stays visible.
			best := s.Cost[0]
			for _, c := range s.Cost {
				if !math.IsNaN(c) && (math.IsNaN(best) || c < best) {
					best = c
				}
			}
			clipped := make([]float64, len(s.Cost))
			for i, c := range s.Cost {
				if !math.IsNaN(c) && c > 5*best {
					c = 5 * best
				}
				clipped[i] = c
			}
			if plot := tablefmt.Plot("", s.T1, clipped, 72, 12); plot != "" {
				fmt.Print(plot)
			}
		}
		fmt.Println()
	}
	if want("fig4") {
		any = true
		rows, err := experiments.Fig4(cfg)
		if err != nil {
			return err
		}
		if err := emit("fig4", experiments.RenderFig4(rows)); err != nil {
			return err
		}
		row, m, err := experiments.Fig4FromTrace(cfg, trace.VBMQA, 5000)
		if err != nil {
			return err
		}
		fmt.Printf("Fig. 4 pipeline check (fitted from synthetic VBMQA trace, model %v):\n", m)
		for j, c := range row.Costs {
			fmt.Printf("  %-14s %s\n", experiments.HeuristicNames[j], tablefmt.Num(c))
		}
		fmt.Println()
	}
	if want("ablations") {
		any = true
		if err := emit("ablation_taileps", experiments.RenderAblationTailEps(experiments.AblationTailEps(cfg))); err != nil {
			return err
		}
		rows, err := experiments.AblationScoring(cfg)
		if err != nil {
			return err
		}
		if err := emit("ablation_scoring", experiments.RenderAblationScoring(rows)); err != nil {
			return err
		}
		ck, err := experiments.AblationCheckpoint(cfg)
		if err != nil {
			return err
		}
		if err := emit("ablation_checkpoint", experiments.RenderAblationCheckpoint(ck)); err != nil {
			return err
		}
		res, err := experiments.AblationResources(cfg)
		if err != nil {
			return err
		}
		if err := emit("ablation_resources", experiments.RenderAblationResources(res)); err != nil {
			return err
		}
		on, err := experiments.StudyOnline(cfg)
		if err != nil {
			return err
		}
		if err := emit("study_online", experiments.RenderStudyOnline(on)); err != nil {
			return err
		}
		qs, err := experiments.StudyQueueDerivedWaits(cfg)
		if err != nil {
			return err
		}
		if err := emit("study_queuesim", experiments.RenderQueueStudy(qs)); err != nil {
			return err
		}
		ms, err := experiments.StudyMisspecification(cfg)
		if err != nil {
			return err
		}
		if err := emit("study_misspec", experiments.RenderMisspecification(ms)); err != nil {
			return err
		}
		bi, err := experiments.StudyBimodal(cfg)
		if err != nil {
			return err
		}
		if err := emit("study_bimodal", experiments.RenderStudyBimodal(bi)); err != nil {
			return err
		}
		ov, err := experiments.StudyOverheadSensitivity(cfg)
		if err != nil {
			return err
		}
		if err := emit("study_overhead", experiments.RenderStudyOverhead(ov)); err != nil {
			return err
		}
		ab, err := experiments.StudyAttemptBudget(cfg)
		if err != nil {
			return err
		}
		if err := emit("study_attempts", experiments.RenderStudyAttemptBudget(ab)); err != nil {
			return err
		}
	}
	if want("exp1") {
		any = true
		res, err := experiments.Exp1(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("§3.5 Exp(1) ReservationOnly: s1 = %.5f (paper: ≈0.74219), E1 = %.5f\n", res.S1, res.E1)
		fmt.Printf("optimal sequence prefix: %.5g (s2 = e^{s1} = %.5f)\n\n", res.Sequence, res.Sequence[1])
	}
	if !any {
		return fmt.Errorf("unknown experiment %q", which)
	}
	return nil
}
