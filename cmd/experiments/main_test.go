package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
)

// smallCfg keeps the CLI integration test fast while exercising every
// code path of runAll.
func smallCfg() experiments.Config {
	return experiments.Config{M: 120, N: 120, DiscN: 60, Epsilon: 1e-7, Seed: 3}
}

func TestRunAllWritesCSVs(t *testing.T) {
	dir := t.TempDir()
	if err := runAll(smallCfg(), "all", dir); err != nil {
		t.Fatal(err)
	}
	// Every named table/figure leaves a CSV behind.
	want := []string{
		"table1.csv", "table2.csv", "table3.csv", "table4.csv", "fig4.csv",
		"fig3_exponential.csv", "fig3_uniform.csv",
		"ablation_taileps.csv", "ablation_scoring.csv",
		"ablation_checkpoint.csv", "ablation_resources.csv",
		"study_online.csv", "study_queuesim.csv", "study_misspec.csv",
	}
	for _, f := range want {
		info, err := os.Stat(filepath.Join(dir, f))
		if err != nil {
			t.Errorf("missing %s: %v", f, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", f)
		}
	}
}

func TestRunAllSingleExperiment(t *testing.T) {
	if err := runAll(smallCfg(), "table1", ""); err != nil {
		t.Fatal(err)
	}
	if err := runAll(smallCfg(), "exp1", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllUnknownName(t *testing.T) {
	if err := runAll(smallCfg(), "nosuch", ""); err == nil {
		t.Error("unknown experiment accepted")
	}
}
