package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/cluster"
)

func testOptions() options {
	return options{
		DistSpec:    "exp(1)",
		Strategies:  []string{"mean-doubling", "equal-probability"},
		Jobs:        1500,
		Seed:        7,
		Nodes:       4,
		NodeCap:     2,
		MinWidth:    1,
		MaxWidth:    2,
		MaxAttempts: 8,
		Backfill:    "easy",
		Model:       repro.CostModel{Alpha: 1, Beta: 0.5, Gamma: 0.1},
		Check:       true,
	}
}

func TestCompareTabulatesEveryStrategy(t *testing.T) {
	opt := testOptions()
	table, err := compare(opt)
	if err != nil {
		t.Fatal(err)
	}
	if table.Rows() != len(opt.Strategies) {
		t.Fatalf("%d rows for %d strategies", table.Rows(), len(opt.Strategies))
	}
	out := table.String()
	for _, name := range opt.Strategies {
		if !strings.Contains(out, name) {
			t.Errorf("table misses strategy %s:\n%s", name, out)
		}
	}
}

// TestCompareWorkerIndependence: the rendered table embeds the trace
// hash of every run, so string equality across worker counts proves the
// event traces are bit-identical.
func TestCompareWorkerIndependence(t *testing.T) {
	var rendered []string
	for _, workers := range []int{1, 4, 16} {
		opt := testOptions()
		opt.Workers = workers
		table, err := compare(opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		rendered = append(rendered, table.String())
	}
	for i := 1; i < len(rendered); i++ {
		if rendered[i] != rendered[0] {
			t.Fatalf("results differ between 1 and %d workers:\n%s\nvs\n%s",
				[]int{1, 4, 16}[i], rendered[0], rendered[i])
		}
	}
}

func TestCompareMeteredTenant(t *testing.T) {
	opt := testOptions()
	opt.Strategies = []string{"mean-doubling"}
	opt.Budget = 200 // tight: most jobs are rejected, accounting must stay clean
	opt.Quota = 3
	table, err := compare(opt)
	if err != nil {
		t.Fatal(err)
	}
	if table.Rows() != 1 {
		t.Fatalf("got %d rows", table.Rows())
	}
}

func TestCompareErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*options)
	}{
		{"no strategies", func(o *options) { o.Strategies = nil }},
		{"unknown strategy", func(o *options) { o.Strategies = []string{"no-such"} }},
		{"bad distribution", func(o *options) { o.DistSpec = "not-a-law(1)" }},
		{"bad backfill", func(o *options) { o.Backfill = "aggressive" }},
		{"zero nodes", func(o *options) { o.Nodes = 0 }},
		{"zero capacity", func(o *options) { o.NodeCap = 0 }},
	}
	for _, tc := range cases {
		opt := testOptions()
		tc.mutate(&opt)
		if _, err := compare(opt); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestSplitStrategies(t *testing.T) {
	if got := splitStrategies(" all "); len(got) != len(repro.Strategies()) {
		t.Fatalf("'all' expanded to %v", got)
	}
	got := splitStrategies("mean-doubling, equal-time ,")
	if len(got) != 2 || got[0] != "mean-doubling" || got[1] != "equal-time" {
		t.Fatalf("got %v", got)
	}
}

func TestParseBackfill(t *testing.T) {
	for in, want := range map[string]cluster.BackfillPolicy{
		"none": cluster.BackfillNone, "EASY": cluster.BackfillEASY,
		" conservative ": cluster.BackfillConservative,
	} {
		got, err := parseBackfill(in)
		if err != nil || got != want {
			t.Errorf("parseBackfill(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseBackfill("firstfit"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	opt := testOptions()
	opt.Strategies = opt.Strategies[:1]
	opt.Jobs = 200
	table, err := compare(opt)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "results")
	path, err := writeCSV(dir, table)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv has %d lines:\n%s", len(lines), data)
	}
	if !strings.HasPrefix(lines[0], "strategy,") {
		t.Fatalf("csv header: %s", lines[0])
	}
}
