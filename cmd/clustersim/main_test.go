package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/cluster"
)

func testOptions() options {
	return options{
		DistSpec:    "exp(1)",
		Strategies:  []string{"mean-doubling", "equal-probability"},
		Jobs:        1500,
		Seed:        7,
		Nodes:       4,
		NodeCap:     2,
		MinWidth:    1,
		MaxWidth:    2,
		MaxAttempts: 8,
		Backfill:    "easy",
		Model:       repro.CostModel{Alpha: 1, Beta: 0.5, Gamma: 0.1},
		Check:       true,
	}
}

func TestCompareTabulatesEveryStrategy(t *testing.T) {
	opt := testOptions()
	table, err := compare(opt)
	if err != nil {
		t.Fatal(err)
	}
	if table.Rows() != len(opt.Strategies) {
		t.Fatalf("%d rows for %d strategies", table.Rows(), len(opt.Strategies))
	}
	out := table.String()
	for _, name := range opt.Strategies {
		if !strings.Contains(out, name) {
			t.Errorf("table misses strategy %s:\n%s", name, out)
		}
	}
}

// TestCompareWorkerIndependence: the rendered table embeds the trace
// hash of every run, so string equality across worker counts proves the
// event traces are bit-identical.
func TestCompareWorkerIndependence(t *testing.T) {
	var rendered []string
	for _, workers := range []int{1, 4, 16} {
		opt := testOptions()
		opt.Workers = workers
		table, err := compare(opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		rendered = append(rendered, table.String())
	}
	for i := 1; i < len(rendered); i++ {
		if rendered[i] != rendered[0] {
			t.Fatalf("results differ between 1 and %d workers:\n%s\nvs\n%s",
				[]int{1, 4, 16}[i], rendered[0], rendered[i])
		}
	}
}

func TestCompareMeteredTenant(t *testing.T) {
	opt := testOptions()
	opt.Strategies = []string{"mean-doubling"}
	opt.Budget = 200 // tight: most jobs are rejected, accounting must stay clean
	opt.Quota = 3
	table, err := compare(opt)
	if err != nil {
		t.Fatal(err)
	}
	if table.Rows() != 1 {
		t.Fatalf("got %d rows", table.Rows())
	}
}

func TestCompareErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*options)
	}{
		{"no strategies", func(o *options) { o.Strategies = nil }},
		{"unknown strategy", func(o *options) { o.Strategies = []string{"no-such"} }},
		{"bad distribution", func(o *options) { o.DistSpec = "not-a-law(1)" }},
		{"bad backfill", func(o *options) { o.Backfill = "aggressive" }},
		{"zero nodes", func(o *options) { o.Nodes = 0 }},
		{"zero capacity", func(o *options) { o.NodeCap = 0 }},
	}
	for _, tc := range cases {
		opt := testOptions()
		tc.mutate(&opt)
		if _, err := compare(opt); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestSplitStrategies(t *testing.T) {
	if got := splitStrategies(" all "); len(got) != len(repro.Strategies()) {
		t.Fatalf("'all' expanded to %v", got)
	}
	got := splitStrategies("mean-doubling, equal-time ,")
	if len(got) != 2 || got[0] != "mean-doubling" || got[1] != "equal-time" {
		t.Fatalf("got %v", got)
	}
}

func TestParseBackfill(t *testing.T) {
	for in, want := range map[string]cluster.BackfillPolicy{
		"none": cluster.BackfillNone, "EASY": cluster.BackfillEASY,
		" conservative ": cluster.BackfillConservative,
	} {
		got, err := parseBackfill(in)
		if err != nil || got != want {
			t.Errorf("parseBackfill(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseBackfill("firstfit"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestParseShapes(t *testing.T) {
	shapes, err := parseShapes("", 16, 4)
	if err != nil || len(shapes) != 1 || shapes[0].Name != "16x4" || len(shapes[0].Nodes) != 16 || shapes[0].Nodes[0] != 4 {
		t.Fatalf("default shape: %+v, %v", shapes, err)
	}
	shapes, err = parseShapes(" 8x2 ,64x1", 16, 4)
	if err != nil || len(shapes) != 2 {
		t.Fatalf("got %+v, %v", shapes, err)
	}
	if shapes[1].Name != "64x1" || len(shapes[1].Nodes) != 64 || shapes[1].Nodes[63] != 1 {
		t.Fatalf("shape 64x1 parsed as %+v", shapes[1])
	}
	for _, bad := range []string{"8", "0x4", "8x0", "8x-1", "axb", ","} {
		if _, err := parseShapes(bad, 16, 4); err == nil {
			t.Errorf("parseShapes(%q) accepted", bad)
		}
	}
}

func sweepTestOptions() options {
	opt := testOptions()
	opt.Jobs = 600
	opt.Replicates = 2
	opt.Shapes = "4x2,2x4"
	return opt
}

// TestSweepTabulatesMatrix: one table row per (strategy × shape) group,
// one result cell per (strategy × shape × replicate).
func TestSweepTabulatesMatrix(t *testing.T) {
	opt := sweepTestOptions()
	table, result, err := sweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(opt.Strategies) * 2; table.Rows() != want {
		t.Fatalf("%d rows, want %d", table.Rows(), want)
	}
	if want := len(opt.Strategies) * 2 * opt.Replicates; len(result.Cells) != want {
		t.Fatalf("%d cells, want %d", len(result.Cells), want)
	}
	out := table.String()
	for _, tok := range []string{"mean-doubling", "equal-probability", "4x2", "2x4"} {
		if !strings.Contains(out, tok) {
			t.Errorf("table misses %q:\n%s", tok, out)
		}
	}
}

// TestSweepWorkerIndependenceCmd: the sweep hash and every cell must be
// bit-identical across worker counts when driven through the command's
// option plumbing.
func TestSweepWorkerIndependenceCmd(t *testing.T) {
	var ref cluster.SweepResult
	for i, workers := range []int{1, 7} {
		opt := sweepTestOptions()
		opt.Workers = workers
		_, result, err := sweep(opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if i == 0 {
			ref = result
			continue
		}
		if result.Hash != ref.Hash {
			t.Fatalf("sweep hash differs: %016x vs %016x", result.Hash, ref.Hash)
		}
		for k := range ref.Cells {
			if result.Cells[k] != ref.Cells[k] {
				t.Fatalf("cell %d differs across worker counts", k)
			}
		}
	}
}

func TestSweepErrorsCmd(t *testing.T) {
	opt := sweepTestOptions()
	opt.Shapes = "8"
	if _, _, err := sweep(opt); err == nil {
		t.Error("bad shape accepted")
	}
	opt = sweepTestOptions()
	opt.Strategies = nil
	if _, _, err := sweep(opt); err == nil {
		t.Error("empty strategy list accepted")
	}
	opt = sweepTestOptions()
	opt.Replicates = 0
	if _, _, err := sweep(opt); err == nil {
		t.Error("zero replicates accepted")
	}
}

// TestRunSmoke: the check.sh gate must pass against the current
// simulator (cross-worker determinism and sketch accuracy).
func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke runs 12 sweeps plus a buffered reference run")
	}
	if err := runSmoke(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteSweepCSV(t *testing.T) {
	opt := sweepTestOptions()
	opt.Jobs = 200
	_, result, err := sweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "results")
	path, err := writeSweepCSV(dir, result)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if want := 1 + len(result.Cells); len(lines) != want {
		t.Fatalf("csv has %d lines, want %d:\n%s", len(lines), want, data)
	}
	if !strings.HasPrefix(lines[0], "strategy,shape,replicate,seed,") {
		t.Fatalf("csv header: %s", lines[0])
	}
	for _, line := range lines[1:] {
		if n := strings.Count(line, ","); n != strings.Count(lines[0], ",") {
			t.Fatalf("ragged csv row: %s", line)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	opt := testOptions()
	opt.Strategies = opt.Strategies[:1]
	opt.Jobs = 200
	table, err := compare(opt)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "results")
	path, err := writeCSV(dir, table)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv has %d lines:\n%s", len(lines), data)
	}
	if !strings.HasPrefix(lines[0], "strategy,") {
		t.Fatalf("csv header: %s", lines[0])
	}
}
