// Command clustersim runs the paper's reservation strategies through
// the fleet-scale cluster simulator (internal/cluster): it generates a
// synthetic workload from a Table-1 law, turns each strategy's
// reservation sequence into a per-job admission policy, simulates the
// same workload under every strategy, and compares utilization, waits,
// and cost:
//
//	clustersim                             # all strategies, Exp(1), 100k jobs
//	clustersim -dist "weibull(1,0.5)" -jobs 1000000 -backfill conservative
//	clustersim -strategies mean-stdev,equal-prob -check
//	clustersim -quota 8 -budget 1e6        # metered tenant under pressure
//	clustersim -sweep -jobs 10000000 -replicates 4 -shapes 16x4,64x1
//
// Runs stream: the workload is generated chunk by chunk alongside the
// event loop and summarized by constant-memory accumulators, so -jobs
// 10000000 needs only the in-flight window. -sweep fans a (strategy ×
// shape × replicate) matrix across -workers goroutines and merges each
// group's replicates deterministically.
//
// Every run is deterministic in -seed (and independent of -workers);
// the trace-hash column is the proof — equal hashes mean bit-identical
// event traces. Pass -check to stream the full trace through the
// invariant checker (capacity conservation, budget/quota accounting,
// job lifecycle); any violation aborts the run. Results are printed
// and, with -out DIR, also written as CSV. -smoke runs the built-in
// determinism and sketch-accuracy gate used by scripts/check.sh.
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro"
	"repro/internal/cluster"
	"repro/internal/tablefmt"
	"repro/internal/trace"
)

func main() {
	var (
		distSpec   = flag.String("dist", "exp(1)", "runtime law (e.g. exp(1), weibull(1,0.5), lognormal(3,0.5))")
		strategies = flag.String("strategies", "all", "comma-separated strategy names, or 'all'")
		jobs       = flag.Int("jobs", 100000, "number of jobs to generate")
		seed       = flag.Uint64("seed", 42, "workload seed")
		rate       = flag.Float64("rate", 0, "Poisson arrival rate (0 = auto-size for ~70% offered load)")
		nodes      = flag.Int("nodes", 16, "number of nodes")
		nodeCap    = flag.Int("cap", 4, "capacity of each node")
		minWidth   = flag.Int("minwidth", 1, "minimum job width")
		maxWidth   = flag.Int("maxwidth", 4, "maximum job width")
		attempts   = flag.Int("maxattempts", 16, "cap on reservation attempts per job")
		backfill   = flag.String("backfill", "easy", "backfill policy: none|easy|conservative")
		preempt    = flag.Float64("preempt", 0, "preempt backfilled jobs blocking a job waiting longer than this (0 = off)")
		budget     = flag.Float64("budget", 0, "tenant budget (0 = unmetered)")
		quota      = flag.Int("quota", 0, "tenant node quota (0 = unlimited)")
		workersF   = flag.Int("workers", 0, "generation/sweep workers (0 = all cores); never changes the result")
		check      = flag.Bool("check", false, "stream every trace through the invariant checker")
		outDir     = flag.String("out", "", "also write CSV results into this directory")
		alpha      = flag.Float64("alpha", 1, "cost model: per-second reservation price")
		beta       = flag.Float64("beta", 0.5, "cost model: per-second usage price")
		gamma      = flag.Float64("gamma", 0.1, "cost model: per-attempt price")
		sweepF     = flag.Bool("sweep", false, "run the (strategy × shape × replicate) sweep matrix")
		replicates = flag.Int("replicates", 3, "seeded replicates per sweep cell")
		shapes     = flag.String("shapes", "", "comma-separated sweep shapes as NODESxCAP (default: the -nodes/-cap shape)")
		smoke      = flag.Bool("smoke", false, "run the determinism and sketch-accuracy smoke gate, then exit")
	)
	flag.Parse()

	if *smoke {
		if err := runSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "clustersim: smoke:", err)
			os.Exit(1)
		}
		fmt.Println("clustersim smoke: ok")
		return
	}

	opt := options{
		DistSpec:    *distSpec,
		Strategies:  splitStrategies(*strategies),
		Jobs:        *jobs,
		Seed:        *seed,
		Rate:        *rate,
		Nodes:       *nodes,
		NodeCap:     *nodeCap,
		MinWidth:    *minWidth,
		MaxWidth:    *maxWidth,
		MaxAttempts: *attempts,
		Backfill:    *backfill,
		Preempt:     *preempt,
		Budget:      *budget,
		Quota:       *quota,
		Model:       repro.CostModel{Alpha: *alpha, Beta: *beta, Gamma: *gamma},
		Workers:     *workersF,
		Check:       *check,
		Replicates:  *replicates,
		Shapes:      *shapes,
	}
	if *sweepF {
		table, result, err := sweep(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clustersim:", err)
			os.Exit(1)
		}
		fmt.Println(table.String())
		fmt.Printf("sweep hash: %016x (%d cells)\n", result.Hash, len(result.Cells))
		if *outDir != "" {
			path, err := writeSweepCSV(*outDir, result)
			if err != nil {
				fmt.Fprintln(os.Stderr, "clustersim:", err)
				os.Exit(1)
			}
			fmt.Println("csv written to", path)
		}
		return
	}
	table, err := compare(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clustersim:", err)
		os.Exit(1)
	}
	fmt.Println(table.String())
	if *outDir != "" {
		path, err := writeCSV(*outDir, table)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clustersim:", err)
			os.Exit(1)
		}
		fmt.Println("csv written to", path)
	}
}

// options carries the parsed flag set; it exists so tests can drive the
// full comparison without a process boundary.
type options struct {
	DistSpec    string
	Strategies  []string
	Jobs        int
	Seed        uint64
	Rate        float64
	Nodes       int
	NodeCap     int
	MinWidth    int
	MaxWidth    int
	MaxAttempts int
	Backfill    string
	Preempt     float64
	Budget      float64
	Quota       int
	Model       repro.CostModel
	Workers     int
	Check       bool
	Replicates  int
	Shapes      string
}

func splitStrategies(s string) []string {
	if strings.EqualFold(strings.TrimSpace(s), "all") {
		return repro.Strategies()
	}
	var names []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			names = append(names, part)
		}
	}
	return names
}

func parseBackfill(s string) (cluster.BackfillPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "none":
		return cluster.BackfillNone, nil
	case "easy":
		return cluster.BackfillEASY, nil
	case "conservative":
		return cluster.BackfillConservative, nil
	}
	return 0, fmt.Errorf("unknown backfill policy %q (want none, easy, or conservative)", s)
}

// parseShapes decodes a comma-separated list of NODESxCAP cluster
// shapes; empty selects the single default shape.
func parseShapes(s string, defNodes, defCap int) ([]cluster.SweepShape, error) {
	if strings.TrimSpace(s) == "" {
		return []cluster.SweepShape{{
			Name:  fmt.Sprintf("%dx%d", defNodes, defCap),
			Nodes: fleetNodes(defNodes, defCap),
		}}, nil
	}
	var out []cluster.SweepShape
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		lo, hi, ok := strings.Cut(strings.ToLower(part), "x")
		if !ok {
			return nil, fmt.Errorf("shape %q is not NODESxCAP", part)
		}
		n, err1 := strconv.Atoi(lo)
		c, err2 := strconv.Atoi(hi)
		if err1 != nil || err2 != nil || n < 1 || c < 1 {
			return nil, fmt.Errorf("shape %q is not NODESxCAP with positive integers", part)
		}
		out = append(out, cluster.SweepShape{Name: part, Nodes: fleetNodes(n, c)})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no shapes in %q", s)
	}
	return out, nil
}

// scenario is the validated, derived form of options shared by the
// single-shape comparison and the sweep.
type scenario struct {
	dist     repro.Distribution
	planner  *repro.Planner
	policies [][]float64 // parallel to options.Strategies
	rate     float64
	backfill cluster.BackfillPolicy
	cfg      cluster.Config // Nodes set to the default shape
}

// expectedReservedTime is the expected node-time one job reserves
// across its kill-and-retry attempts under the policy:
// Σ_i r_i · P(X ≥ r_{i-1}), r_0 = 0 — Eq. (4)'s α term, truncated at
// the attempt cap. Actual occupancy is lower (completed attempts free
// their slots early), so sizing arrivals against it is conservative.
func expectedReservedTime(d repro.Distribution, policy []float64) float64 {
	occ, prev := 0.0, 0.0
	for _, r := range policy {
		occ += r * d.Survival(prev)
		prev = r
	}
	return occ
}

// buildScenario validates options and derives policies and the arrival
// rate. sizingCap is the fleet capacity the auto-rate targets; <= 0
// means the default -nodes×-cap shape. Sweeps pass the smallest shape
// capacity in the matrix so no shape runs overloaded.
func buildScenario(opt options, sizingCap int) (*scenario, error) {
	if len(opt.Strategies) == 0 {
		return nil, fmt.Errorf("no strategies selected")
	}
	if opt.Nodes <= 0 || opt.NodeCap <= 0 {
		return nil, fmt.Errorf("need a positive node count and capacity")
	}
	d, err := repro.ParseDistribution(opt.DistSpec)
	if err != nil {
		return nil, err
	}
	pl, err := repro.NewPlanner(opt.Model, repro.Options{})
	if err != nil {
		return nil, err
	}
	policies := make([][]float64, len(opt.Strategies))
	maxReserved := 0.0
	for i, name := range opt.Strategies {
		policy, err := pl.AdmissionPolicy(d, name, opt.MaxAttempts)
		if err != nil {
			return nil, err
		}
		policies[i] = policy
		if occ := expectedReservedTime(d, policy); occ > maxReserved {
			maxReserved = occ
		}
	}
	capacity := sizingCap
	if capacity <= 0 {
		capacity = opt.Nodes * opt.NodeCap
	}
	rate := opt.Rate
	if rate <= 0 {
		// Offered load ≈ rate · E[reserved time] · E[width] / capacity:
		// size the arrival rate so the fleet sits near 70% offered load
		// under the hungriest selected strategy. Reserved time — not
		// E[X] — is what kill-and-retry admission burns, and sizing
		// against the raw mean makes multi-attempt scenarios unstable
		// (an ever-growing queue and quadratic scheduling cost).
		meanWidth := float64(opt.MinWidth)
		if opt.MaxWidth > opt.MinWidth {
			meanWidth = float64(opt.MinWidth+opt.MaxWidth) / 2
		}
		rate = 0.7 * float64(capacity) / (maxReserved * meanWidth)
	}
	back, err := parseBackfill(opt.Backfill)
	if err != nil {
		return nil, err
	}
	tenantBudget := opt.Budget
	if tenantBudget <= 0 {
		tenantBudget = math.Inf(1)
	}
	return &scenario{
		dist:     d,
		planner:  pl,
		policies: policies,
		rate:     rate,
		backfill: back,
		cfg: cluster.Config{
			Nodes:        fleetNodes(opt.Nodes, opt.NodeCap),
			Tenants:      []cluster.Tenant{{Name: "fleet", Budget: tenantBudget, Quota: opt.Quota}},
			Backfill:     back,
			Model:        pl.CostModel(),
			PreemptAfter: opt.Preempt,
		},
	}, nil
}

// workload builds the one-class WorkloadSpec for a policy.
func (sc *scenario) workload(opt options, policy []float64) cluster.WorkloadSpec {
	return cluster.WorkloadSpec{
		Seed:        opt.Seed,
		Jobs:        opt.Jobs,
		ArrivalRate: sc.rate,
		Classes: []cluster.JobClass{{
			Name:     sc.dist.Name(),
			Runtime:  sc.dist,
			Weight:   1,
			MinWidth: opt.MinWidth,
			MaxWidth: opt.MaxWidth,
			Policy:   policy,
		}},
	}
}

// compare runs the same seeded workload under every requested strategy
// and tabulates the outcomes. The generated jobs are identical across
// strategies — only the per-job reservation policy differs — so the
// columns are directly comparable. Each run streams: results fold into
// constant-memory accumulators as jobs retire.
func compare(opt options) (*tablefmt.Table, error) {
	sc, err := buildScenario(opt, 0)
	if err != nil {
		return nil, err
	}
	table := tablefmt.New(
		fmt.Sprintf("clustersim: %s, %d jobs on %d×%d nodes, rate %.3g, %s backfill (seed %d)",
			sc.dist.Name(), opt.Jobs, opt.Nodes, opt.NodeCap, sc.rate, sc.backfill, opt.Seed),
		"strategy", "attempts", "mean att", "kills", "rejected", "util",
		"mean wait", "p95 wait", "mean cost", "trace hash",
	)
	for i, name := range opt.Strategies {
		policy := sc.policies[i]
		out, err := cluster.RunStream(sc.workload(opt, policy), sc.cfg, opt.Workers, opt.Check)
		if err != nil {
			return nil, fmt.Errorf("strategy %s: %w", name, err)
		}
		table.AddRow(
			name,
			fmt.Sprintf("%d", len(policy)),
			tablefmt.Num(out.Stats.MeanAttempts),
			fmt.Sprintf("%d", out.Stats.Killed),
			fmt.Sprintf("%d", out.Stats.Rejected),
			fmt.Sprintf("%.4f", out.Stats.Utilization),
			tablefmt.Num(out.Stats.MeanWait),
			tablefmt.Num(out.Stats.WaitP95),
			tablefmt.Num(out.Stats.MeanCost),
			fmt.Sprintf("%016x", out.TraceHash),
		)
	}
	return table, nil
}

// sweep runs the (strategy × shape × replicate) matrix and tabulates
// the merged groups.
func sweep(opt options) (*tablefmt.Table, cluster.SweepResult, error) {
	var zero cluster.SweepResult
	if opt.Replicates < 1 {
		return nil, zero, fmt.Errorf("need at least one replicate, got %d", opt.Replicates)
	}
	shapes, err := parseShapes(opt.Shapes, opt.Nodes, opt.NodeCap)
	if err != nil {
		return nil, zero, err
	}
	// Size the shared workload's arrival rate by the smallest fleet in
	// the matrix: the sweep pairs one workload across every shape, and
	// sizing by the default shape would overload any smaller one.
	minCap := 0
	for _, sh := range shapes {
		c := 0
		for _, n := range sh.Nodes {
			c += n
		}
		if minCap == 0 || c < minCap {
			minCap = c
		}
	}
	sc, err := buildScenario(opt, minCap)
	if err != nil {
		return nil, zero, err
	}
	strategies := make([]cluster.SweepStrategy, 0, len(opt.Strategies))
	for i, name := range opt.Strategies {
		strategies = append(strategies, cluster.SweepStrategy{Name: name, Policy: sc.policies[i]})
	}
	spec := cluster.SweepSpec{
		// The template class policy is overridden per strategy cell;
		// any valid sequence satisfies workload validation.
		Workload:   sc.workload(opt, strategies[0].Policy),
		Strategies: strategies,
		Shapes:     shapes,
		Replicates: opt.Replicates,
		Base:       sc.cfg,
		Check:      opt.Check,
	}
	result, err := cluster.RunSweep(spec, opt.Workers)
	if err != nil {
		return nil, zero, err
	}
	table := tablefmt.New(
		fmt.Sprintf("clustersim sweep: %s, %d jobs × %d replicates, rate %.3g, %s backfill (seed %d)",
			sc.dist.Name(), opt.Jobs, opt.Replicates, sc.rate, sc.backfill, opt.Seed),
		"strategy", "shape", "mean att", "killed", "rejected", "util",
		"mean wait", "p50 wait", "p99 wait", "p99.9 wait", "mean cost",
	)
	for _, g := range result.Groups {
		table.AddRow(
			g.Strategy,
			g.Shape,
			tablefmt.Num(g.Stats.MeanAttempts),
			fmt.Sprintf("%d", g.Stats.Killed),
			fmt.Sprintf("%d", g.Stats.Rejected),
			fmt.Sprintf("%.4f", g.Stats.Utilization),
			tablefmt.Num(g.Stats.MeanWait),
			tablefmt.Num(g.Stats.WaitP50),
			tablefmt.Num(g.Stats.WaitP99),
			tablefmt.Num(g.Stats.WaitP999),
			tablefmt.Num(g.Stats.MeanCost),
		)
	}
	return table, result, nil
}

// fleetNodes builds a homogeneous node list.
func fleetNodes(n, capacity int) []int {
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = capacity
	}
	return nodes
}

// writeCSV writes the comparison table into dir and returns the path.
// Output is buffered and flushed once, with the flush and close errors
// checked — a full disk cannot silently truncate results.
func writeCSV(dir string, table *tablefmt.Table) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "clustersim.csv")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	w := bufio.NewWriter(f)
	if err := table.WriteCSV(w); err == nil {
		err = w.Flush()
	} else {
		_ = f.Close()
		return "", err
	}
	if err != nil {
		_ = f.Close()
		return "", err
	}
	return path, f.Close()
}

// writeSweepCSV streams every sweep cell as one CSV row through a
// buffered writer, flushed and error-checked once at the end.
func writeSweepCSV(dir string, result cluster.SweepResult) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "clustersweep.csv")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	bw := bufio.NewWriter(f)
	cw := csv.NewWriter(bw)
	_ = cw.Write([]string{
		"strategy", "shape", "replicate", "seed", "jobs", "completed",
		"killed", "rejected", "utilization", "mean_wait", "wait_p50",
		"wait_p95", "wait_p99", "wait_p999", "mean_cost", "trace_hash",
	})
	for _, c := range result.Cells {
		_ = cw.Write([]string{
			c.Strategy,
			c.Shape,
			strconv.Itoa(c.Replicate),
			fmt.Sprintf("%016x", c.Seed),
			strconv.Itoa(c.Stats.Jobs),
			strconv.Itoa(c.Stats.Completed),
			strconv.Itoa(c.Stats.Killed),
			strconv.Itoa(c.Stats.Rejected),
			strconv.FormatFloat(c.Stats.Utilization, 'g', -1, 64),
			strconv.FormatFloat(c.Stats.MeanWait, 'g', -1, 64),
			strconv.FormatFloat(c.Stats.WaitP50, 'g', -1, 64),
			strconv.FormatFloat(c.Stats.WaitP95, 'g', -1, 64),
			strconv.FormatFloat(c.Stats.WaitP99, 'g', -1, 64),
			strconv.FormatFloat(c.Stats.WaitP999, 'g', -1, 64),
			strconv.FormatFloat(c.Stats.MeanCost, 'g', -1, 64),
			fmt.Sprintf("%016x", c.TraceHash),
		})
	}
	// One flush, one error check: csv.Writer sticks its first error,
	// and Flush drains through the bufio layer.
	cw.Flush()
	if err := cw.Error(); err != nil {
		_ = f.Close()
		return "", err
	}
	if err := bw.Flush(); err != nil {
		_ = f.Close()
		return "", err
	}
	return path, f.Close()
}

// runSmoke is the default-gate self test: (1) a small sweep matrix must
// produce bit-identical cells and hashes for 1, 4, and 16 workers;
// (2) the streaming quantile sketch must agree with exact sorted-sample
// quantiles within its documented error bound.
func runSmoke() error {
	opt := options{
		DistSpec:    "exp(1)",
		Strategies:  []string{"mean-doubling", "equal-probability"},
		Jobs:        2000,
		Seed:        7,
		Nodes:       8,
		NodeCap:     2,
		MinWidth:    1,
		MaxWidth:    2,
		MaxAttempts: 8,
		Backfill:    "easy",
		Model:       repro.CostModel{Alpha: 1, Beta: 0.5, Gamma: 0.1},
		Check:       true,
		Replicates:  2,
		Shapes:      "8x2,4x4",
	}

	// Cross-worker sweep determinism.
	var ref cluster.SweepResult
	for i, workers := range []int{1, 4, 16} {
		o := opt
		o.Workers = workers
		_, result, err := sweep(o)
		if err != nil {
			return fmt.Errorf("sweep (workers=%d): %w", workers, err)
		}
		if i == 0 {
			ref = result
			continue
		}
		if result.Hash != ref.Hash {
			return fmt.Errorf("sweep hash diverged: workers=%d gave %016x, workers=1 gave %016x",
				workers, result.Hash, ref.Hash)
		}
		for k := range ref.Cells {
			if result.Cells[k] != ref.Cells[k] {
				return fmt.Errorf("sweep cell %d diverged between workers=1 and workers=%d", k, workers)
			}
		}
	}

	// Sketch-vs-exact quantile parity on a buffered run of the same
	// scenario.
	sc, err := buildScenario(opt, 0)
	if err != nil {
		return err
	}
	out, err := cluster.Run(sc.workload(opt, sc.policies[0]), sc.cfg, opt.Workers, true)
	if err != nil {
		return err
	}
	var waits []float64
	for _, r := range out.Results {
		if !r.Rejected {
			waits = append(waits, r.Wait)
		}
	}
	if len(waits) == 0 {
		return fmt.Errorf("smoke scenario admitted no jobs")
	}
	sort.Float64s(waits)
	exact := func(p float64) float64 {
		rank := int(math.Ceil(p * float64(len(waits))))
		if rank < 1 {
			rank = 1
		}
		if rank > len(waits) {
			rank = len(waits)
		}
		return waits[rank-1]
	}
	checks := []struct {
		p    float64
		got  float64
		name string
	}{
		{0.50, out.Stats.WaitP50, "p50"},
		{0.95, out.Stats.WaitP95, "p95"},
		{0.99, out.Stats.WaitP99, "p99"},
		{0.999, out.Stats.WaitP999, "p99.9"},
	}
	for _, c := range checks {
		want := exact(c.p)
		bound := trace.DefaultSketchAlpha*math.Abs(want) + 1e-9
		if math.Abs(c.got-want) > bound {
			return fmt.Errorf("sketch %s = %g, exact %g, |err| > %g", c.name, c.got, want, bound)
		}
	}
	return nil
}
