// Command clustersim runs the paper's reservation strategies through
// the fleet-scale cluster simulator (internal/cluster): it generates a
// synthetic workload from a Table-1 law, turns each strategy's
// reservation sequence into a per-job admission policy, simulates the
// same workload under every strategy, and compares utilization, waits,
// and cost:
//
//	clustersim                             # all strategies, Exp(1), 100k jobs
//	clustersim -dist "weibull(1,0.5)" -jobs 1000000 -backfill conservative
//	clustersim -strategies mean-stdev,equal-prob -check
//	clustersim -quota 8 -budget 1e6        # metered tenant under pressure
//
// Every run is deterministic in -seed (and independent of -workers);
// the trace-hash column is the proof — equal hashes mean bit-identical
// event traces. Pass -check to stream the full trace through the
// invariant checker (capacity conservation, budget/quota accounting,
// job lifecycle); any violation aborts the run. Results are printed
// and, with -out DIR, also written as CSV.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro"
	"repro/internal/cluster"
	"repro/internal/tablefmt"
)

func main() {
	var (
		distSpec   = flag.String("dist", "exp(1)", "runtime law (e.g. exp(1), weibull(1,0.5), lognormal(3,0.5))")
		strategies = flag.String("strategies", "all", "comma-separated strategy names, or 'all'")
		jobs       = flag.Int("jobs", 100000, "number of jobs to generate")
		seed       = flag.Uint64("seed", 42, "workload seed")
		rate       = flag.Float64("rate", 0, "Poisson arrival rate (0 = auto-size for ~70% offered load)")
		nodes      = flag.Int("nodes", 16, "number of nodes")
		nodeCap    = flag.Int("cap", 4, "capacity of each node")
		minWidth   = flag.Int("minwidth", 1, "minimum job width")
		maxWidth   = flag.Int("maxwidth", 4, "maximum job width")
		attempts   = flag.Int("maxattempts", 16, "cap on reservation attempts per job")
		backfill   = flag.String("backfill", "easy", "backfill policy: none|easy|conservative")
		preempt    = flag.Float64("preempt", 0, "preempt backfilled jobs blocking a job waiting longer than this (0 = off)")
		budget     = flag.Float64("budget", 0, "tenant budget (0 = unmetered)")
		quota      = flag.Int("quota", 0, "tenant node quota (0 = unlimited)")
		alpha      = flag.Float64("alpha", 1, "cost model: per-second reservation price")
		beta       = flag.Float64("beta", 0.5, "cost model: per-second usage price")
		gamma      = flag.Float64("gamma", 0.1, "cost model: per-attempt price")
		workers    = flag.Int("workers", 0, "generation workers (0 = all cores); never changes the result")
		check      = flag.Bool("check", false, "stream every trace through the invariant checker")
		outDir     = flag.String("out", "", "also write CSV results into this directory")
	)
	flag.Parse()

	opt := options{
		DistSpec:    *distSpec,
		Strategies:  splitStrategies(*strategies),
		Jobs:        *jobs,
		Seed:        *seed,
		Rate:        *rate,
		Nodes:       *nodes,
		NodeCap:     *nodeCap,
		MinWidth:    *minWidth,
		MaxWidth:    *maxWidth,
		MaxAttempts: *attempts,
		Backfill:    *backfill,
		Preempt:     *preempt,
		Budget:      *budget,
		Quota:       *quota,
		Model:       repro.CostModel{Alpha: *alpha, Beta: *beta, Gamma: *gamma},
		Workers:     *workers,
		Check:       *check,
	}
	table, err := compare(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clustersim:", err)
		os.Exit(1)
	}
	fmt.Println(table.String())
	if *outDir != "" {
		path, err := writeCSV(*outDir, table)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clustersim:", err)
			os.Exit(1)
		}
		fmt.Println("csv written to", path)
	}
}

// options carries the parsed flag set; it exists so tests can drive the
// full comparison without a process boundary.
type options struct {
	DistSpec    string
	Strategies  []string
	Jobs        int
	Seed        uint64
	Rate        float64
	Nodes       int
	NodeCap     int
	MinWidth    int
	MaxWidth    int
	MaxAttempts int
	Backfill    string
	Preempt     float64
	Budget      float64
	Quota       int
	Model       repro.CostModel
	Workers     int
	Check       bool
}

func splitStrategies(s string) []string {
	if strings.EqualFold(strings.TrimSpace(s), "all") {
		return repro.Strategies()
	}
	var names []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			names = append(names, part)
		}
	}
	return names
}

func parseBackfill(s string) (cluster.BackfillPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "none":
		return cluster.BackfillNone, nil
	case "easy":
		return cluster.BackfillEASY, nil
	case "conservative":
		return cluster.BackfillConservative, nil
	}
	return 0, fmt.Errorf("unknown backfill policy %q (want none, easy, or conservative)", s)
}

// compare runs the same seeded workload under every requested strategy
// and tabulates the outcomes. The generated jobs are identical across
// strategies — only the per-job reservation policy differs — so the
// columns are directly comparable.
func compare(opt options) (*tablefmt.Table, error) {
	if len(opt.Strategies) == 0 {
		return nil, fmt.Errorf("no strategies selected")
	}
	if opt.Nodes <= 0 || opt.NodeCap <= 0 {
		return nil, fmt.Errorf("need a positive node count and capacity")
	}
	d, err := repro.ParseDistribution(opt.DistSpec)
	if err != nil {
		return nil, err
	}
	pl, err := repro.NewPlanner(opt.Model, repro.Options{})
	if err != nil {
		return nil, err
	}
	capacity := opt.Nodes * opt.NodeCap
	rate := opt.Rate
	if rate <= 0 {
		// Offered load ≈ rate · E[X] · E[width] / capacity: size the
		// arrival rate so the fleet sits near 70% offered load.
		meanWidth := float64(opt.MinWidth)
		if opt.MaxWidth > opt.MinWidth {
			meanWidth = float64(opt.MinWidth+opt.MaxWidth) / 2
		}
		rate = 0.7 * float64(capacity) / (d.Mean() * meanWidth)
	}
	back, err := parseBackfill(opt.Backfill)
	if err != nil {
		return nil, err
	}
	tenantBudget := opt.Budget
	if tenantBudget <= 0 {
		tenantBudget = math.Inf(1)
	}
	cfg := cluster.Config{
		Nodes:        fleetNodes(opt.Nodes, opt.NodeCap),
		Tenants:      []cluster.Tenant{{Name: "fleet", Budget: tenantBudget, Quota: opt.Quota}},
		Backfill:     back,
		Model:        pl.CostModel(),
		PreemptAfter: opt.Preempt,
	}

	table := tablefmt.New(
		fmt.Sprintf("clustersim: %s, %d jobs on %d×%d nodes, rate %.3g, %s backfill (seed %d)",
			d.Name(), opt.Jobs, opt.Nodes, opt.NodeCap, rate, back, opt.Seed),
		"strategy", "attempts", "mean att", "kills", "rejected", "util",
		"mean wait", "p95 wait", "mean cost", "trace hash",
	)
	for _, name := range opt.Strategies {
		policy, err := pl.AdmissionPolicy(d, name, opt.MaxAttempts)
		if err != nil {
			return nil, err
		}
		spec := cluster.WorkloadSpec{
			Seed:        opt.Seed,
			Jobs:        opt.Jobs,
			ArrivalRate: rate,
			Classes: []cluster.JobClass{{
				Name:     d.Name(),
				Runtime:  d,
				Weight:   1,
				MinWidth: opt.MinWidth,
				MaxWidth: opt.MaxWidth,
				Policy:   policy,
			}},
		}
		out, err := cluster.Run(spec, cfg, opt.Workers, opt.Check)
		if err != nil {
			return nil, fmt.Errorf("strategy %s: %w", name, err)
		}
		killed := 0
		for _, r := range out.Results {
			if r.Killed {
				killed++
			}
		}
		table.AddRow(
			name,
			fmt.Sprintf("%d", len(policy)),
			tablefmt.Num(out.Stats.MeanAttempts),
			fmt.Sprintf("%d", killed),
			fmt.Sprintf("%d", out.Stats.Rejected),
			fmt.Sprintf("%.4f", out.Stats.Utilization),
			tablefmt.Num(out.Stats.MeanWait),
			tablefmt.Num(out.Stats.WaitP95),
			tablefmt.Num(out.Stats.MeanCost),
			fmt.Sprintf("%016x", out.TraceHash),
		)
	}
	return table, nil
}

// fleetNodes builds a homogeneous node list.
func fleetNodes(n, capacity int) []int {
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = capacity
	}
	return nodes
}

// writeCSV writes the comparison table into dir and returns the path.
func writeCSV(dir string, table *tablefmt.Table) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "clustersim.csv")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := table.WriteCSV(f); err != nil {
		_ = f.Close()
		return "", err
	}
	return path, f.Close()
}
