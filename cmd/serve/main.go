// Command serve runs the plan service: the repro.Planner facade
// behind a JSON API with response caching, request coalescing, and
// expvar metrics (see internal/service).
//
// Usage:
//
//	serve [-addr :8080] [-cache 256] [-planner-cache 32]
//	      [-worker-budget 0] [-request-timeout 30s] [-shutdown-grace 5s]
//	      [-shards 1] [-peers name=url,...] [-replicas 128]
//	      [-warm] [-admit-rate 0] [-tenant-weights name=w,...]
//	      [-batch-window 0] [-batch-limit 16] [-dpverify]
//
// With the default -shards 1 and no -peers, one backend serves
// directly. -shards N runs N in-process backend shards behind a
// consistent-hash routing frontend; -peers routes to already-running
// backend processes instead. -warm precomputes the Table-1 grid into
// the fleet's caches before the listener opens; -admit-rate enables
// per-tenant fair-share admission control at the frontend.
//
// The server stops gracefully on SIGINT/SIGTERM: it stops accepting
// connections, then waits up to -shutdown-grace for in-flight requests
// to drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/dp"
	"repro/internal/service"
	"repro/internal/tenant"
)

// config is the parsed, validated command line.
type config struct {
	addr             string
	cacheSize        int
	plannerCacheSize int
	workerBudget     int
	requestTimeout   time.Duration
	shutdownGrace    time.Duration
	dpVerify         bool

	shards        int
	peers         map[string]string // name -> base URL, nil when unset
	peerNames     []string          // sorted, for deterministic ring input
	replicas      int
	warm          bool
	admitRate     float64
	tenantWeights map[string]float64
	batchWindow   time.Duration
	batchLimit    int
}

// parsePeers parses "name=url,name=url" into a map.
func parsePeers(s string) (map[string]string, []string, error) {
	if s == "" {
		return nil, nil, nil
	}
	peers := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		name, url, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || url == "" {
			return nil, nil, fmt.Errorf("-peers entry %q is not name=url", part)
		}
		if _, dup := peers[name]; dup {
			return nil, nil, fmt.Errorf("-peers repeats name %q", name)
		}
		peers[name] = url
	}
	names := make([]string, 0, len(peers))
	for n := range peers {
		names = append(names, n)
	}
	sort.Strings(names)
	return peers, names, nil
}

// parseWeights parses "name=w,name=w" into a weight table.
func parseWeights(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	weights := make(map[string]float64)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("-tenant-weights entry %q is not name=weight", part)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("-tenant-weights %q: weight must be a positive number", part)
		}
		weights[name] = w
	}
	return weights, nil
}

// parseFlags parses and validates the command line.
func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var cfg config
	var peersFlag, weightsFlag string
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.IntVar(&cfg.cacheSize, "cache", service.DefaultCacheSize, "response cache capacity per shard, in entries")
	fs.IntVar(&cfg.plannerCacheSize, "planner-cache", service.DefaultPlannerCacheSize, "planner cache capacity per shard, in entries")
	fs.IntVar(&cfg.workerBudget, "worker-budget", 0, "max concurrent plan computations per shard (0 = GOMAXPROCS)")
	fs.DurationVar(&cfg.requestTimeout, "request-timeout", 30*time.Second, "per-request computation timeout (0 = none)")
	fs.DurationVar(&cfg.shutdownGrace, "shutdown-grace", 5*time.Second, "graceful-shutdown drain deadline")
	fs.BoolVar(&cfg.dpVerify, "dpverify", false, "cross-check every DP row computed by the sub-quadratic solvers against the reference scan (debug; slow)")
	fs.IntVar(&cfg.shards, "shards", 1, "in-process backend shard count behind the routing frontend")
	fs.StringVar(&peersFlag, "peers", "", "comma-separated name=url backend peers to route to instead of in-process shards")
	fs.IntVar(&cfg.replicas, "replicas", 0, "virtual nodes per shard on the routing ring (0 = default)")
	fs.BoolVar(&cfg.warm, "warm", false, "precompute the Table-1 grid (nine laws x three cost models) into the caches before serving")
	fs.Float64Var(&cfg.admitRate, "admit-rate", 0, "total admission rate across tenants, requests/sec (0 = no admission control)")
	fs.StringVar(&weightsFlag, "tenant-weights", "", "comma-separated name=weight fair-share weights (unlisted tenants share a default bucket)")
	fs.DurationVar(&cfg.batchWindow, "batch-window", 0, "per-shard batching window for cache misses sharing a planner (0 = no batching)")
	fs.IntVar(&cfg.batchLimit, "batch-limit", service.DefaultBatchLimit, "max cache misses per batch flush")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if fs.NArg() > 0 {
		return config{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if cfg.addr == "" {
		return config{}, errors.New("-addr must not be empty")
	}
	if cfg.cacheSize < 1 {
		return config{}, fmt.Errorf("-cache must be at least 1, got %d", cfg.cacheSize)
	}
	if cfg.plannerCacheSize < 1 {
		return config{}, fmt.Errorf("-planner-cache must be at least 1, got %d", cfg.plannerCacheSize)
	}
	if cfg.workerBudget < 0 {
		return config{}, fmt.Errorf("-worker-budget must not be negative, got %d", cfg.workerBudget)
	}
	if cfg.requestTimeout < 0 {
		return config{}, fmt.Errorf("-request-timeout must not be negative, got %v", cfg.requestTimeout)
	}
	if cfg.shutdownGrace < 0 {
		return config{}, fmt.Errorf("-shutdown-grace must not be negative, got %v", cfg.shutdownGrace)
	}
	if cfg.shards < 1 {
		return config{}, fmt.Errorf("-shards must be at least 1, got %d", cfg.shards)
	}
	if cfg.replicas < 0 {
		return config{}, fmt.Errorf("-replicas must not be negative, got %d", cfg.replicas)
	}
	if cfg.admitRate < 0 {
		return config{}, fmt.Errorf("-admit-rate must not be negative, got %g", cfg.admitRate)
	}
	if cfg.batchWindow < 0 {
		return config{}, fmt.Errorf("-batch-window must not be negative, got %v", cfg.batchWindow)
	}
	if cfg.batchLimit < 1 {
		return config{}, fmt.Errorf("-batch-limit must be at least 1, got %d", cfg.batchLimit)
	}
	var err error
	cfg.peers, cfg.peerNames, err = parsePeers(peersFlag)
	if err != nil {
		return config{}, err
	}
	if cfg.peers != nil && cfg.shards != 1 {
		return config{}, errors.New("-peers and -shards are mutually exclusive")
	}
	cfg.tenantWeights, err = parseWeights(weightsFlag)
	if err != nil {
		return config{}, err
	}
	return cfg, nil
}

// backendConfig is the per-shard service configuration.
func (cfg config) backendConfig() service.Config {
	return service.Config{
		Cache: service.CacheConfig{
			Responses: cfg.cacheSize,
			Planners:  cfg.plannerCacheSize,
		},
		Limits: service.LimitsConfig{
			RequestTimeout: cfg.requestTimeout,
			WorkerBudget:   cfg.workerBudget,
			BatchWindow:    cfg.batchWindow,
			BatchLimit:     cfg.batchLimit,
		},
	}
}

// buildHandler assembles the deployment the flags describe: a lone
// backend, a frontend over N in-process shards, or a frontend over
// remote peers. The returned start hook launches the health prober
// when there is a frontend.
func buildHandler(cfg config) (http.Handler, func(ctx context.Context), error) {
	if cfg.peers == nil && cfg.shards == 1 && cfg.admitRate == 0 {
		return service.New(cfg.backendConfig()), func(context.Context) {}, nil
	}
	var refs []service.BackendRef
	if cfg.peers != nil {
		for _, name := range cfg.peerNames {
			refs = append(refs, service.BackendRef{Name: name, URL: cfg.peers[name]})
		}
	} else {
		for i := 0; i < cfg.shards; i++ {
			refs = append(refs, service.BackendRef{
				Name:    "shard-" + strconv.Itoa(i),
				Handler: service.New(cfg.backendConfig()),
			})
		}
	}
	fe, err := service.NewFrontend(service.FrontendConfig{
		Backends: refs,
		Shard:    service.ShardConfig{Replicas: cfg.replicas},
		Admission: tenant.Config{
			Rate:    cfg.admitRate,
			Weights: cfg.tenantWeights,
		},
	})
	if err != nil {
		return nil, nil, err
	}
	return fe, func(ctx context.Context) { go fe.ProbeLoop(ctx) }, nil
}

// run serves until the listener fails or ctx is canceled, then drains
// gracefully.
func run(ctx context.Context, cfg config, logger *log.Logger) error {
	if cfg.dpVerify {
		dp.SetVerifyRows(true)
		logger.Printf("dpverify: per-row DP cross-checking enabled")
	}
	handler, start, err := buildHandler(cfg)
	if err != nil {
		return err
	}
	if cfg.warm {
		reqs := service.WarmupRequests()
		warmed, err := service.Warm(ctx, handler, reqs)
		if err != nil {
			return fmt.Errorf("warmup: %w", err)
		}
		logger.Printf("warmup: %d/%d Table-1 grid entries cached", warmed, len(reqs))
	}
	start(ctx)
	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		logger.Printf("plan server listening on %s", cfg.addr)
		errCh <- srv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		logger.Printf("shutting down (draining for up to %v)", cfg.shutdownGrace)
		sctx, cancel := context.WithTimeout(context.Background(), cfg.shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger := log.New(os.Stderr, "serve: ", log.LstdFlags)
	if err := run(ctx, cfg, logger); err != nil {
		logger.Fatal(err)
	}
}
