// Command serve runs the HTTP plan server: the repro.Planner facade
// behind a JSON API with response caching, request coalescing, and
// expvar metrics (see internal/service).
//
// Usage:
//
//	serve [-addr :8080] [-cache 256] [-planner-cache 32]
//	      [-worker-budget 0] [-request-timeout 30s] [-shutdown-grace 5s]
//	      [-dpverify]
//
// The server stops gracefully on SIGINT/SIGTERM: it stops accepting
// connections, then waits up to -shutdown-grace for in-flight requests
// to drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dp"
	"repro/internal/service"
)

// config is the parsed, validated command line.
type config struct {
	addr             string
	cacheSize        int
	plannerCacheSize int
	workerBudget     int
	requestTimeout   time.Duration
	shutdownGrace    time.Duration
	dpVerify         bool
}

// parseFlags parses and validates the command line.
func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var cfg config
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.IntVar(&cfg.cacheSize, "cache", service.DefaultCacheSize, "response cache capacity, in entries")
	fs.IntVar(&cfg.plannerCacheSize, "planner-cache", service.DefaultPlannerCacheSize, "planner cache capacity, in entries")
	fs.IntVar(&cfg.workerBudget, "worker-budget", 0, "max concurrent plan computations (0 = GOMAXPROCS)")
	fs.DurationVar(&cfg.requestTimeout, "request-timeout", 30*time.Second, "per-request computation timeout (0 = none)")
	fs.DurationVar(&cfg.shutdownGrace, "shutdown-grace", 5*time.Second, "graceful-shutdown drain deadline")
	fs.BoolVar(&cfg.dpVerify, "dpverify", false, "cross-check every DP row computed by the sub-quadratic solvers against the reference scan (debug; slow)")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if fs.NArg() > 0 {
		return config{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if cfg.addr == "" {
		return config{}, errors.New("-addr must not be empty")
	}
	if cfg.cacheSize < 1 {
		return config{}, fmt.Errorf("-cache must be at least 1, got %d", cfg.cacheSize)
	}
	if cfg.plannerCacheSize < 1 {
		return config{}, fmt.Errorf("-planner-cache must be at least 1, got %d", cfg.plannerCacheSize)
	}
	if cfg.workerBudget < 0 {
		return config{}, fmt.Errorf("-worker-budget must not be negative, got %d", cfg.workerBudget)
	}
	if cfg.requestTimeout < 0 {
		return config{}, fmt.Errorf("-request-timeout must not be negative, got %v", cfg.requestTimeout)
	}
	if cfg.shutdownGrace < 0 {
		return config{}, fmt.Errorf("-shutdown-grace must not be negative, got %v", cfg.shutdownGrace)
	}
	return cfg, nil
}

// run serves until the listener fails or ctx is canceled, then drains
// gracefully.
func run(ctx context.Context, cfg config, logger *log.Logger) error {
	if cfg.dpVerify {
		dp.SetVerifyRows(true)
		logger.Printf("dpverify: per-row DP cross-checking enabled")
	}
	handler := service.New(service.Config{
		CacheSize:        cfg.cacheSize,
		PlannerCacheSize: cfg.plannerCacheSize,
		WorkerBudget:     cfg.workerBudget,
		RequestTimeout:   cfg.requestTimeout,
	})
	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		logger.Printf("plan server listening on %s", cfg.addr)
		errCh <- srv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		logger.Printf("shutting down (draining for up to %v)", cfg.shutdownGrace)
		sctx, cancel := context.WithTimeout(context.Background(), cfg.shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger := log.New(os.Stderr, "serve: ", log.LstdFlags)
	if err := run(ctx, cfg, logger); err != nil {
		logger.Fatal(err)
	}
}
