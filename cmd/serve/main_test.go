package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/service"
)

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != ":8080" {
		t.Errorf("addr = %q", cfg.addr)
	}
	if cfg.cacheSize != 256 || cfg.plannerCacheSize != 32 {
		t.Errorf("cache sizes = %d/%d", cfg.cacheSize, cfg.plannerCacheSize)
	}
	if cfg.workerBudget != 0 {
		t.Errorf("worker budget = %d", cfg.workerBudget)
	}
	if cfg.requestTimeout != 30*time.Second || cfg.shutdownGrace != 5*time.Second {
		t.Errorf("timeouts = %v/%v", cfg.requestTimeout, cfg.shutdownGrace)
	}
}

func TestParseFlagsOverrides(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-addr", "127.0.0.1:9090", "-cache", "8", "-planner-cache", "2",
		"-worker-budget", "3", "-request-timeout", "1s", "-shutdown-grace", "2s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != "127.0.0.1:9090" || cfg.cacheSize != 8 || cfg.plannerCacheSize != 2 ||
		cfg.workerBudget != 3 || cfg.requestTimeout != time.Second || cfg.shutdownGrace != 2*time.Second {
		t.Errorf("cfg = %+v", cfg)
	}
}

func TestParseFlagsRejectsInvalid(t *testing.T) {
	for _, args := range [][]string{
		{"-addr", ""},
		{"-cache", "0"},
		{"-cache", "-1"},
		{"-planner-cache", "0"},
		{"-worker-budget", "-2"},
		{"-request-timeout", "-1s"},
		{"-shutdown-grace", "-1s"},
		{"stray-positional"},
		{"-no-such-flag"},
		{"-shards", "0"},
		{"-replicas", "-1"},
		{"-admit-rate", "-1"},
		{"-batch-window", "-1s"},
		{"-batch-limit", "0"},
		{"-peers", "no-equals-sign"},
		{"-peers", "a=http://x,a=http://y"},
		{"-peers", "a=http://x", "-shards", "2"},
		{"-tenant-weights", "a=0"},
		{"-tenant-weights", "a=-1"},
		{"-tenant-weights", "a=notanumber"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) accepted", args)
		}
	}
}

// TestParseFlagsShardingOptions: the fleet flags parse into a
// deterministic configuration.
func TestParseFlagsShardingOptions(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-shards", "4", "-replicas", "64", "-warm",
		"-admit-rate", "50", "-tenant-weights", "team-a=3,team-b=1",
		"-batch-window", "2ms", "-batch-limit", "8",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.shards != 4 || cfg.replicas != 64 || !cfg.warm {
		t.Errorf("cfg = %+v", cfg)
	}
	if cfg.admitRate != 50 || cfg.tenantWeights["team-a"] != 3 || cfg.tenantWeights["team-b"] != 1 {
		t.Errorf("admission cfg = %g %v", cfg.admitRate, cfg.tenantWeights)
	}
	if cfg.batchWindow != 2*time.Millisecond || cfg.batchLimit != 8 {
		t.Errorf("batch cfg = %v/%d", cfg.batchWindow, cfg.batchLimit)
	}

	cfg, err = parseFlags([]string{"-peers", "b=http://b:8081, a=http://a:8081"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.peers["a"] != "http://a:8081" || cfg.peers["b"] != "http://b:8081" {
		t.Errorf("peers = %v", cfg.peers)
	}
	// Peer names are sorted so every process builds the same ring.
	if len(cfg.peerNames) != 2 || cfg.peerNames[0] != "a" || cfg.peerNames[1] != "b" {
		t.Errorf("peerNames = %v", cfg.peerNames)
	}
}

// TestBuildHandlerShapes: the flags select the right deployment shape.
func TestBuildHandlerShapes(t *testing.T) {
	mustBuild := func(args ...string) any {
		t.Helper()
		cfg, err := parseFlags(args)
		if err != nil {
			t.Fatal(err)
		}
		h, start, err := buildHandler(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if start == nil {
			t.Fatal("nil start hook")
		}
		return h
	}
	if _, ok := mustBuild().(*service.Backend); !ok {
		t.Error("default flags should build a lone backend")
	}
	if _, ok := mustBuild("-shards", "4").(*service.Frontend); !ok {
		t.Error("-shards 4 should build a frontend")
	}
	if _, ok := mustBuild("-peers", "a=http://a:1,b=http://b:1").(*service.Frontend); !ok {
		t.Error("-peers should build a frontend")
	}
	// Admission control requires the frontend tier even with one shard.
	if _, ok := mustBuild("-admit-rate", "10").(*service.Frontend); !ok {
		t.Error("-admit-rate should build a frontend")
	}
}

// TestWarmedSingleShardServes: a warm run over the in-process fleet
// completes and serves a Table-1 request as a hit (end-to-end, small).
func TestWarmedFleetServesTable1Hit(t *testing.T) {
	if testing.Short() {
		t.Skip("warmup grid is too expensive for -short")
	}
	cfg, err := parseFlags([]string{"-shards", "2"})
	if err != nil {
		t.Fatal(err)
	}
	h, _, err := buildHandler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := service.WarmupRequests()
	warmed, err := service.Warm(context.Background(), h, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if warmed != len(reqs) {
		t.Fatalf("warmed %d/%d", warmed, len(reqs))
	}
	b, _ := json.Marshal(reqs[0])
	req := httptest.NewRequest(http.MethodPost, "/v1/plan", bytes.NewReader(b))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "hit" {
		t.Errorf("status %d, X-Cache %q", rec.Code, rec.Header().Get("X-Cache"))
	}
}

// TestRunShutsDownGracefully starts the server on an ephemeral port
// with an already-canceled context: run must drain and return nil.
func TestRunShutsDownGracefully(t *testing.T) {
	cfg, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-shutdown-grace", "2s"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	logger := log.New(io.Discard, "", 0)
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, logger) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not shut down")
	}
}
