package main

import (
	"context"
	"io"
	"log"
	"testing"
	"time"
)

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != ":8080" {
		t.Errorf("addr = %q", cfg.addr)
	}
	if cfg.cacheSize != 256 || cfg.plannerCacheSize != 32 {
		t.Errorf("cache sizes = %d/%d", cfg.cacheSize, cfg.plannerCacheSize)
	}
	if cfg.workerBudget != 0 {
		t.Errorf("worker budget = %d", cfg.workerBudget)
	}
	if cfg.requestTimeout != 30*time.Second || cfg.shutdownGrace != 5*time.Second {
		t.Errorf("timeouts = %v/%v", cfg.requestTimeout, cfg.shutdownGrace)
	}
}

func TestParseFlagsOverrides(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-addr", "127.0.0.1:9090", "-cache", "8", "-planner-cache", "2",
		"-worker-budget", "3", "-request-timeout", "1s", "-shutdown-grace", "2s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != "127.0.0.1:9090" || cfg.cacheSize != 8 || cfg.plannerCacheSize != 2 ||
		cfg.workerBudget != 3 || cfg.requestTimeout != time.Second || cfg.shutdownGrace != 2*time.Second {
		t.Errorf("cfg = %+v", cfg)
	}
}

func TestParseFlagsRejectsInvalid(t *testing.T) {
	for _, args := range [][]string{
		{"-addr", ""},
		{"-cache", "0"},
		{"-cache", "-1"},
		{"-planner-cache", "0"},
		{"-worker-budget", "-2"},
		{"-request-timeout", "-1s"},
		{"-shutdown-grace", "-1s"},
		{"stray-positional"},
		{"-no-such-flag"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) accepted", args)
		}
	}
}

// TestRunShutsDownGracefully starts the server on an ephemeral port
// with an already-canceled context: run must drain and return nil.
func TestRunShutsDownGracefully(t *testing.T) {
	cfg, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-shutdown-grace", "2s"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	logger := log.New(io.Discard, "", 0)
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, logger) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not shut down")
	}
}
