// Command advisor is the end-to-end tool a practitioner would run: feed
// it a trace of historical execution times (one duration per line, or a
// CSV column), and it fits candidate distributions, selects the best by
// Kolmogorov–Smirnov distance, plans a reservation strategy, and prints
// the plan with its operating statistics and Reserved-vs-On-Demand
// verdict.
//
//	advisor -trace runs.txt
//	advisor -trace runs.csv -col 2 -alpha 0.95 -beta 1 -gamma 1.05
//	advisor -trace runs.txt -strategy equal-probability -json
//
// With -demo it synthesizes a VBMQA-like trace instead of reading a
// file, so the tool can be tried without data.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/dist"
	"repro/internal/trace"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "trace file: one duration per line, or CSV (see -col)")
		col       = flag.Int("col", 1, "1-based CSV column holding the durations")
		demo      = flag.Bool("demo", false, "use a synthetic VBMQA-like trace instead of -trace")
		strat     = flag.String("strategy", repro.StrategyBruteForce, "strategy: "+strings.Join(repro.Strategies(), "|"))
		alpha     = flag.Float64("alpha", 1, "cost per requested time unit")
		beta      = flag.Float64("beta", 0, "cost per used time unit")
		gamma     = flag.Float64("gamma", 0, "per-reservation overhead")
		ratio     = flag.Float64("odratio", 4, "On-Demand/Reserved price ratio for the verdict")
		asJSON    = flag.Bool("json", false, "emit the plan as JSON")
	)
	flag.Parse()

	samples, err := loadTrace(*tracePath, *col, *demo)
	if err != nil {
		fmt.Fprintln(os.Stderr, "advisor:", err)
		os.Exit(1)
	}
	if err := run(os.Stdout, samples, *strat, repro.CostModel{Alpha: *alpha, Beta: *beta, Gamma: *gamma}, *ratio, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "advisor:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, samples []float64, strat string, m repro.CostModel, odRatio float64, asJSON bool) error {
	fits, err := dist.BestFit(samples)
	if err != nil {
		return err
	}
	best := fits[0]
	plan, err := repro.MakePlan(m, best.Dist, strat, repro.Options{})
	if err != nil {
		return err
	}
	if asJSON {
		raw, err := plan.JSON()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, string(raw))
		return nil
	}

	mean, sd := dist.SampleMoments(samples)
	fmt.Fprintf(w, "trace:            %d runs, mean %.4g, sd %.4g\n", len(samples), mean, sd)
	crit := dist.KSCriticalValue(len(samples), 0.05)
	fmt.Fprintf(w, "candidate fits (Kolmogorov–Smirnov; DKW 5%% acceptance bound %.4f):\n", crit)
	for _, f := range fits {
		marker := " "
		if f.Family == best.Family {
			marker = "*"
		}
		verdict := "ok"
		if f.KS > crit {
			verdict = "rejected"
		}
		fmt.Fprintf(w, "  %s %-12s KS=%.4f (%s)  %s\n", marker, f.Family, f.KS, verdict, f.Dist.Name())
	}
	if best.KS > crit {
		fmt.Fprintf(w, "  warning: even the best family is rejected at 5%%; consider the empirical law\n")
	}
	fmt.Fprintf(w, "\ncost model:       %v\n", m)
	fmt.Fprintf(w, "strategy:         %s\n", strat)
	fmt.Fprintf(w, "reservations:     %.5g\n", plan.Reservations)
	fmt.Fprintf(w, "expected cost:    %.5g (%.3f× omniscient)\n", plan.ExpectedCost, plan.NormalizedCost)
	if st, err := plan.Stats(); err == nil {
		fmt.Fprintf(w, "expected attempts %.3f, utilization %.1f%%\n", st.ExpectedAttempts, 100*st.Utilization)
	}
	if p99, err := plan.CostQuantile(0.99); err == nil {
		fmt.Fprintf(w, "p99 cost:         %.5g\n", p99)
	}
	if ok, err := plan.ReservedVsOnDemand(odRatio); err == nil {
		verdict := "stay on demand"
		if ok {
			verdict = "RESERVE"
		}
		fmt.Fprintf(w, "verdict (OD/RI ×%.1f): %s\n", odRatio, verdict)
	}
	return nil
}

// loadTrace reads durations from a file (plain or CSV) or synthesizes a
// demo trace.
func loadTrace(path string, col int, demo bool) ([]float64, error) {
	if demo {
		return trace.GenerateRunTrace(trace.VBMQA, 5000, 0.01, 42)
	}
	if path == "" {
		return nil, fmt.Errorf("need -trace FILE or -demo")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseTrace(f, col)
}

// ParseTrace reads one duration per record from r: plain lines of
// numbers, or CSV rows whose col-th (1-based) field is numeric. Header
// rows and blank lines are skipped; any other malformed row is an error.
func ParseTrace(r io.Reader, col int) ([]float64, error) {
	if col < 1 {
		return nil, fmt.Errorf("column must be >= 1, got %d", col)
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.TrimLeadingSpace = true
	var out []float64
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", row+1, err)
		}
		row++
		if len(rec) == 1 && strings.TrimSpace(rec[0]) == "" {
			continue
		}
		if col > len(rec) {
			return nil, fmt.Errorf("row %d has %d fields, need column %d", row, len(rec), col)
		}
		field := strings.TrimSpace(rec[col-1])
		v, err := strconv.ParseFloat(field, 64)
		if err != nil {
			if row == 1 {
				continue // header
			}
			return nil, fmt.Errorf("row %d: %q is not a number", row, field)
		}
		if !(v > 0) {
			return nil, fmt.Errorf("row %d: duration %g must be positive", row, v)
		}
		out = append(out, v)
	}
	if len(out) < 2 {
		return nil, fmt.Errorf("trace has only %d usable durations", len(out))
	}
	return out, nil
}

// CostModelFor builds the cost model from flag values (exposed for the
// end-to-end test).
func CostModelFor(alpha, beta, gamma float64) repro.CostModel {
	return repro.CostModel{Alpha: alpha, Beta: beta, Gamma: gamma}
}
