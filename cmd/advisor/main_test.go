package main

import (
	"math"
	"strings"
	"testing"
)

func TestParseTracePlainLines(t *testing.T) {
	in := "100.5\n200\n\n300.25\n"
	got, err := ParseTrace(strings.NewReader(in), 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{100.5, 200, 300.25}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestParseTraceCSVColumn(t *testing.T) {
	in := "job,duration,nodes\nj1,120.5,4\nj2,98,2\nj3,101,8\n"
	got, err := ParseTrace(strings.NewReader(in), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 120.5 || got[2] != 101 {
		t.Errorf("got %v", got)
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []struct {
		in  string
		col int
	}{
		{"", 1},                     // empty
		{"abc\ndef\n", 1},           // non-numeric data row
		{"1,2\n3\n", 3},             // missing column
		{"100\n-5\n", 1},            // negative duration
		{"100\n0\n", 1},             // zero duration
		{"100\n", 1},                // single value
		{"duration\n100\n200\n", 0}, // bad column index
		{"1\nnan\n", 1},             // NaN string parses to NaN; must be rejected
	}
	for i, c := range cases {
		if _, err := ParseTrace(strings.NewReader(c.in), c.col); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestParseTraceHeaderSkipped(t *testing.T) {
	in := "duration_seconds\n10\n20\n30\n"
	got, err := ParseTrace(strings.NewReader(in), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("got %v", got)
	}
}

func TestLoadTraceDemo(t *testing.T) {
	samples, err := loadTrace("", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 5000 {
		t.Errorf("demo trace has %d samples", len(samples))
	}
	mean := 0.0
	for _, s := range samples {
		mean += s
	}
	mean /= float64(len(samples))
	if math.Abs(mean-1253) > 60 {
		t.Errorf("demo trace mean %g, want ≈1253 s", mean)
	}
	if _, err := loadTrace("", 1, false); err == nil {
		t.Error("missing -trace accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	samples, err := loadTrace("", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	m := CostModelFor(0.95, 1, 1.05)
	if err := run(&buf, samples, "equal-probability", m, 4, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"lognormal", "expected cost", "verdict", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := run(&buf, samples, "equal-probability", m, 4, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"strategy\"") {
		t.Errorf("JSON output missing fields:\n%s", buf.String())
	}
}
