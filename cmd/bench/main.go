// Command bench runs the repository's scoring benchmarks through `go
// test -bench` and records the machine-readable results (ns/op, B/op,
// allocs/op) in a JSON file, BENCH.json by default. The file is the
// regression baseline for the empirical-cost fast path: committing it
// alongside a perf-sensitive change documents the before/after numbers,
// and re-running `scripts/bench.sh` on a later revision shows any
// drift.
//
// Usage:
//
//	go run ./cmd/bench                       # default subset -> BENCH.json
//	go run ./cmd/bench -bench . -out all.json
//	go run ./cmd/bench -cpuprofile cpu.out   # profile the benchmarked code
//	go run ./cmd/bench -compare BENCH.json   # regression check, no write
//	go run ./cmd/bench -loadgen=false        # skip the loadgen entries
//	scripts/check.sh --bench                 # full gate + benchmarks
//
// The output is deterministic apart from the measurements themselves:
// benchmarks are sorted by name, repeated -count runs are averaged, and
// no timestamps are recorded (wall-clock metadata would make every run
// a spurious diff).
//
// With -loadgen (the default), bench also runs `go run ./cmd/loadgen
// -bench-json -` — a short deterministic load-generator pass against an
// in-process sharded plan service — and merges its latency-quantile and
// hit-ratio entries into the report, so fleet-level serving numbers are
// written to and gated by BENCH.json exactly like the micro-benchmarks.
//
// -cpuprofile/-memprofile are handed through to `go test`, which writes
// the profile files and the compiled test binary (needed by `go tool
// pprof`) into the repository root. -compare replaces the write with a
// regression gate: current ns/op is diffed against the named baseline
// JSON for every benchmark present in both, and the exit status is
// nonzero if any benchmark slowed down by more than 25%.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"

	"repro/internal/benchfmt"
)

// Result and Report alias the shared BENCH.json schema; cmd/loadgen
// produces entries in the same shape so both tools write one file.
type (
	Result = benchfmt.Result
	Report = benchfmt.Report
)

// parseBenchOutput, compareReports, and stripProcsSuffix are the
// schema package's implementations under their historical names; the
// behavior is pinned by this package's tests.
func parseBenchOutput(text string) (Report, error) { return benchfmt.ParseGoBench(text) }

func compareReports(baseline, current Report, tolerance float64) ([]string, bool) {
	return benchfmt.Compare(baseline, current, tolerance)
}

func stripProcsSuffix(name string) string { return benchfmt.StripProcsSuffix(name) }

// defaultBench is the scoring-path subset — the candidate-evaluation
// benchmarks the empirical-cost fast path is accountable to, the DP
// solver benchmarks (sub-quadratic fast path, O(n²) reference scan,
// budgeted variant) and the batched grid-scoring pair — plus the
// plan-service pair contrasting cached and uncached request latency,
// and the cluster-simulator trio (streaming calendar engine, buffered
// heap baseline, parallel sweep) whose speedup ratio the gate below
// pins. The full suite (-bench .) includes multi-second experiment
// drivers and is opt-in.
const defaultBench = "^(BenchmarkWorkloadScoring|BenchmarkBruteForceScoring|BenchmarkAnalyticScoring|BenchmarkBatchedScoring|BenchmarkDPSolve|BenchmarkDPSolveScan|BenchmarkDPSolveBudget|BenchmarkMonteCarlo|BenchmarkExpectedCost|BenchmarkPlanServiceCached|BenchmarkPlanServiceUncached|BenchmarkClusterSim|BenchmarkClusterSimHeap|BenchmarkClusterSweep)$"

// compareTolerance is the -compare regression threshold: a benchmark
// fails the gate when its current ns/op exceeds the baseline by more
// than 25%. Generous enough to absorb ordinary machine noise on a 1s
// benchtime, tight enough to catch a lost fast path.
const compareTolerance = 1.25

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "BENCH.json", "output JSON file")
	benchRe := fs.String("bench", defaultBench, "go test -bench regexp")
	benchtime := fs.String("benchtime", "1s", "go test -benchtime value")
	count := fs.Int("count", 1, "go test -count repetitions (averaged)")
	pkg := fs.String("pkg", ".", "package to benchmark")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file (passed to go test)")
	memprofile := fs.String("memprofile", "", "write an allocation profile to this file (passed to go test)")
	compare := fs.String("compare", "", "baseline JSON to diff against instead of writing -out; exit nonzero on >25% ns/op regressions")
	loadgen := fs.Bool("loadgen", true, "also run cmd/loadgen and merge its serving-latency entries into the report")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cmdArgs := []string{
		"test", "-run", "^$",
		"-bench", *benchRe,
		"-benchmem",
		"-benchtime", *benchtime,
		"-count", strconv.Itoa(*count),
	}
	if *cpuprofile != "" {
		cmdArgs = append(cmdArgs, "-cpuprofile", *cpuprofile)
	}
	if *memprofile != "" {
		cmdArgs = append(cmdArgs, "-memprofile", *memprofile)
	}
	cmdArgs = append(cmdArgs, *pkg)
	fmt.Fprintf(stderr, "bench: go %s\n", strings.Join(cmdArgs, " "))
	cmd := exec.Command("go", cmdArgs...)
	cmd.Stderr = stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(stderr, "bench: go test: %v\n", err)
		return 1
	}
	if _, err := stdout.Write(raw); err != nil {
		fmt.Fprintf(stderr, "bench: %v\n", err)
		return 1
	}

	report, err := parseBenchOutput(string(raw))
	if err != nil {
		fmt.Fprintf(stderr, "bench: %v\n", err)
		return 1
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintf(stderr, "bench: no benchmarks matched %q\n", *benchRe)
		return 1
	}
	if *loadgen {
		entries, err := runLoadgen(stderr)
		if err != nil {
			fmt.Fprintf(stderr, "bench: loadgen: %v\n", err)
			return 1
		}
		report = benchfmt.Merge(report, entries)
		fmt.Fprintf(stderr, "bench: merged %d loadgen entries\n", len(entries))
	}
	if *compare != "" {
		baseline, err := benchfmt.ReadFile(*compare)
		if err != nil {
			fmt.Fprintf(stderr, "bench: %v\n", err)
			return 1
		}
		lines, regressed := compareReports(baseline, report, compareTolerance)
		for _, l := range lines {
			fmt.Fprintf(stderr, "bench: %s\n", l)
		}
		if regressed {
			fmt.Fprintf(stderr, "bench: ns/op regression above %.0f%% vs %s\n", (compareTolerance-1)*100, *compare)
			return 1
		}
		fmt.Fprintf(stderr, "bench: no regressions vs %s\n", *compare)
		return 0
	}
	if err := report.WriteFile(*out); err != nil {
		fmt.Fprintf(stderr, "bench: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "bench: wrote %d benchmarks to %s\n", len(report.Benchmarks), *out)
	return 0
}

// runLoadgen executes the load generator's bench pass (its committed
// default mix against an in-process sharded service) and returns the
// BENCH.json entries it printed on stdout.
func runLoadgen(stderr io.Writer) ([]Result, error) {
	args := []string{"run", "./cmd/loadgen", "-bench-json", "-"}
	fmt.Fprintf(stderr, "bench: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stderr = stderr
	raw, err := cmd.Output()
	if err != nil {
		return nil, err
	}
	var entries []Result
	if err := json.Unmarshal(raw, &entries); err != nil {
		return nil, fmt.Errorf("parsing loadgen output: %v", err)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("loadgen produced no entries")
	}
	return entries, nil
}
