// Command bench runs the repository's scoring benchmarks through `go
// test -bench` and records the machine-readable results (ns/op, B/op,
// allocs/op) in a JSON file, BENCH.json by default. The file is the
// regression baseline for the empirical-cost fast path: committing it
// alongside a perf-sensitive change documents the before/after numbers,
// and re-running `scripts/bench.sh` on a later revision shows any
// drift.
//
// Usage:
//
//	go run ./cmd/bench                       # default subset -> BENCH.json
//	go run ./cmd/bench -bench . -out all.json
//	go run ./cmd/bench -cpuprofile cpu.out   # profile the benchmarked code
//	go run ./cmd/bench -compare BENCH.json   # regression check, no write
//	scripts/check.sh --bench                 # full gate + benchmarks
//
// The output is deterministic apart from the measurements themselves:
// benchmarks are sorted by name, repeated -count runs are averaged, and
// no timestamps are recorded (wall-clock metadata would make every run
// a spurious diff).
//
// -cpuprofile/-memprofile are handed through to `go test`, which writes
// the profile files and the compiled test binary (needed by `go tool
// pprof`) into the repository root. -compare replaces the write with a
// regression gate: current ns/op is diffed against the named baseline
// JSON for every benchmark present in both, and the exit status is
// nonzero if any benchmark slowed down by more than 25%.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// defaultBench is the scoring-path subset — the candidate-evaluation
// benchmarks the empirical-cost fast path is accountable to, the DP
// solver benchmarks (sub-quadratic fast path, O(n²) reference scan,
// budgeted variant) and the batched grid-scoring pair — plus the
// plan-service pair contrasting cached and uncached request latency.
// The full suite (-bench .) includes multi-second experiment drivers
// and is opt-in.
const defaultBench = "^(BenchmarkWorkloadScoring|BenchmarkBruteForceScoring|BenchmarkAnalyticScoring|BenchmarkBatchedScoring|BenchmarkDPSolve|BenchmarkDPSolveScan|BenchmarkDPSolveBudget|BenchmarkMonteCarlo|BenchmarkExpectedCost|BenchmarkPlanServiceCached|BenchmarkPlanServiceUncached|BenchmarkClusterSim)$"

// compareTolerance is the -compare regression threshold: a benchmark
// fails the gate when its current ns/op exceeds the baseline by more
// than 25%. Generous enough to absorb ordinary machine noise on a 1s
// benchtime, tight enough to catch a lost fast path.
const compareTolerance = 1.25

// Result is one benchmark's averaged measurements.
type Result struct {
	// Name is the benchmark name with the GOMAXPROCS suffix stripped
	// (BenchmarkFoo/bar-8 -> BenchmarkFoo/bar).
	Name string `json:"name"`
	// Runs is the number of -count repetitions averaged together.
	Runs int `json:"runs"`
	// Iterations is the mean b.N across runs.
	Iterations float64 `json:"iterations"`
	// NsPerOp is the mean ns/op.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is the mean B/op (0 unless -benchmem reported it).
	BytesPerOp float64 `json:"bytes_per_op"`
	// AllocsPerOp is the mean allocs/op (0 unless -benchmem reported it).
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Report is the BENCH.json schema.
type Report struct {
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "BENCH.json", "output JSON file")
	benchRe := fs.String("bench", defaultBench, "go test -bench regexp")
	benchtime := fs.String("benchtime", "1s", "go test -benchtime value")
	count := fs.Int("count", 1, "go test -count repetitions (averaged)")
	pkg := fs.String("pkg", ".", "package to benchmark")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file (passed to go test)")
	memprofile := fs.String("memprofile", "", "write an allocation profile to this file (passed to go test)")
	compare := fs.String("compare", "", "baseline JSON to diff against instead of writing -out; exit nonzero on >25% ns/op regressions")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cmdArgs := []string{
		"test", "-run", "^$",
		"-bench", *benchRe,
		"-benchmem",
		"-benchtime", *benchtime,
		"-count", strconv.Itoa(*count),
	}
	if *cpuprofile != "" {
		cmdArgs = append(cmdArgs, "-cpuprofile", *cpuprofile)
	}
	if *memprofile != "" {
		cmdArgs = append(cmdArgs, "-memprofile", *memprofile)
	}
	cmdArgs = append(cmdArgs, *pkg)
	fmt.Fprintf(stderr, "bench: go %s\n", strings.Join(cmdArgs, " "))
	cmd := exec.Command("go", cmdArgs...)
	cmd.Stderr = stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(stderr, "bench: go test: %v\n", err)
		return 1
	}
	if _, err := stdout.Write(raw); err != nil {
		fmt.Fprintf(stderr, "bench: %v\n", err)
		return 1
	}

	report, err := parseBenchOutput(string(raw))
	if err != nil {
		fmt.Fprintf(stderr, "bench: %v\n", err)
		return 1
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintf(stderr, "bench: no benchmarks matched %q\n", *benchRe)
		return 1
	}
	if *compare != "" {
		blob, err := os.ReadFile(*compare)
		if err != nil {
			fmt.Fprintf(stderr, "bench: %v\n", err)
			return 1
		}
		var baseline Report
		if err := json.Unmarshal(blob, &baseline); err != nil {
			fmt.Fprintf(stderr, "bench: parsing %s: %v\n", *compare, err)
			return 1
		}
		lines, regressed := compareReports(baseline, report, compareTolerance)
		for _, l := range lines {
			fmt.Fprintf(stderr, "bench: %s\n", l)
		}
		if regressed {
			fmt.Fprintf(stderr, "bench: ns/op regression above %.0f%% vs %s\n", (compareTolerance-1)*100, *compare)
			return 1
		}
		fmt.Fprintf(stderr, "bench: no regressions vs %s\n", *compare)
		return 0
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "bench: %v\n", err)
		return 1
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(stderr, "bench: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "bench: wrote %d benchmarks to %s\n", len(report.Benchmarks), *out)
	return 0
}

// parseBenchOutput turns `go test -bench` text into a Report. Repeated
// lines for one benchmark (from -count > 1) are averaged; benchmarks
// are sorted by name.
func parseBenchOutput(text string) (Report, error) {
	var report Report
	type acc struct {
		runs                       int
		iters, ns, bytesOp, allocs float64
	}
	sums := make(map[string]*acc)
	var order []string

	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			report.GoOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			report.GoArch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			report.Pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			report.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name iterations value unit [value unit ...]
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := stripProcsSuffix(fields[0])
		iters, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return report, fmt.Errorf("bad iteration count in %q: %v", line, err)
		}
		a := sums[name]
		if a == nil {
			a = &acc{}
			sums[name] = a
			order = append(order, name)
		}
		a.runs++
		a.iters += iters
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return report, fmt.Errorf("bad value in %q: %v", line, err)
			}
			switch fields[i+1] {
			case "ns/op":
				a.ns += v
			case "B/op":
				a.bytesOp += v
			case "allocs/op":
				a.allocs += v
			}
		}
	}

	sort.Strings(order)
	for _, name := range order {
		a := sums[name]
		n := float64(a.runs)
		report.Benchmarks = append(report.Benchmarks, Result{
			Name:        name,
			Runs:        a.runs,
			Iterations:  a.iters / n,
			NsPerOp:     a.ns / n,
			BytesPerOp:  a.bytesOp / n,
			AllocsPerOp: a.allocs / n,
		})
	}
	return report, nil
}

// compareReports diffs current ns/op and allocs/op against the
// baseline for every benchmark present in both reports, in baseline
// order. It returns one human-readable line per shared benchmark plus
// notes for benchmarks only one side has, and whether any shared
// benchmark regressed: ns/op above baseline × tolerance, or allocs/op
// measurably above baseline. Allocation counts are deterministic, so
// they get no 25% slack — growth past rounding noise means a scoring
// path gained an allocation, which is exactly what the static gate
// (cmd/lint hotalloc/ifaceescape and the -escapes baseline) guards;
// an ALLOC REGRESSION here that the static gate missed means a
// hot-path annotation is missing. Faster-than-baseline results never
// fail: the gate exists to catch lost fast paths, not to freeze
// improvements.
func compareReports(baseline, current Report, tolerance float64) (lines []string, regressed bool) {
	cur := make(map[string]Result, len(current.Benchmarks))
	for _, r := range current.Benchmarks {
		cur[r.Name] = r
	}
	shared := make(map[string]bool, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		c, ok := cur[b.Name]
		if !ok {
			lines = append(lines, fmt.Sprintf("%s: in baseline only, skipped", b.Name))
			continue
		}
		shared[b.Name] = true
		ratio := c.NsPerOp / b.NsPerOp
		verdict := "ok"
		if b.NsPerOp > 0 && ratio > tolerance {
			verdict = "REGRESSION"
			regressed = true
		}
		allocs := ""
		if b.AllocsPerOp > 0 || c.AllocsPerOp > 0 {
			allocs = fmt.Sprintf(", %.0f -> %.0f allocs/op", b.AllocsPerOp, c.AllocsPerOp)
			// +0.5 absorbs averaging across -count>1 runs; any real new
			// allocation shifts the count by at least 1.
			if c.AllocsPerOp > b.AllocsPerOp+0.5 {
				verdict = "ALLOC REGRESSION (check go run ./cmd/lint -escapes ./...)"
				regressed = true
			}
		}
		lines = append(lines, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%)%s %s",
			b.Name, b.NsPerOp, c.NsPerOp, (ratio-1)*100, allocs, verdict))
	}
	for _, c := range current.Benchmarks {
		if !shared[c.Name] {
			lines = append(lines, fmt.Sprintf("%s: not in baseline, skipped", c.Name))
		}
	}
	return lines, regressed
}

// stripProcsSuffix removes the trailing -GOMAXPROCS tag go test appends
// to benchmark names (BenchmarkFoo/bar-8 -> BenchmarkFoo/bar), so the
// recorded names do not depend on the machine's core count.
func stripProcsSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
