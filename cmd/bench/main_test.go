package main

import (
	"encoding/json"
	"math"
	"os"
	"strings"
	"testing"
)

const cannedOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkBruteForceScoring/monte-carlo-8         	    1652	    712738 ns/op	  156252 B/op	      13 allocs/op
BenchmarkBruteForceScoring/analytic-8            	     334	   3496205 ns/op	 1141552 B/op	   25554 allocs/op
BenchmarkWorkloadScoring/cost-on-samples-8       	      28	  41037973 ns/op	 1794968 B/op	   38096 allocs/op
BenchmarkWorkloadScoring/workload-8              	    2000	    548697 ns/op	   24784 B/op	       6 allocs/op
BenchmarkWorkloadScoring/workload-8              	    2000	    548703 ns/op	   24784 B/op	       6 allocs/op
PASS
ok  	repro	12.345s
`

func TestParseBenchOutput(t *testing.T) {
	report, err := parseBenchOutput(cannedOutput)
	if err != nil {
		t.Fatal(err)
	}
	if report.GoOS != "linux" || report.GoArch != "amd64" || report.Pkg != "repro" {
		t.Errorf("header = (%q, %q, %q)", report.GoOS, report.GoArch, report.Pkg)
	}
	if report.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu = %q", report.CPU)
	}
	names := make([]string, len(report.Benchmarks))
	for i, r := range report.Benchmarks {
		names[i] = r.Name
	}
	want := []string{
		"BenchmarkBruteForceScoring/analytic",
		"BenchmarkBruteForceScoring/monte-carlo",
		"BenchmarkWorkloadScoring/cost-on-samples",
		"BenchmarkWorkloadScoring/workload",
	}
	if len(names) != len(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v (sorted, procs suffix stripped)", names, want)
		}
	}

	mc := report.Benchmarks[1]
	if mc.Runs != 1 || mc.Iterations != 1652 || mc.NsPerOp != 712738 ||
		mc.BytesPerOp != 156252 || mc.AllocsPerOp != 13 {
		t.Errorf("monte-carlo = %+v", mc)
	}
	// The duplicated workload line (-count 2) is averaged.
	wl := report.Benchmarks[3]
	if wl.Runs != 2 || math.Abs(wl.NsPerOp-548700) > 0.5 || wl.AllocsPerOp != 6 {
		t.Errorf("workload = %+v, want 2 runs averaging to 548700 ns/op", wl)
	}
}

func TestParseBenchOutputBadLine(t *testing.T) {
	if _, err := parseBenchOutput("BenchmarkX-8\tnot-a-number\t10 ns/op\n"); err == nil {
		t.Error("want error for unparseable iteration count")
	}
}

func TestCompareReports(t *testing.T) {
	baseline := Report{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 1000},
		{Name: "BenchmarkB", NsPerOp: 1000},
		{Name: "BenchmarkGone", NsPerOp: 500},
	}}
	current := Report{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 1240}, // +24%: inside tolerance
		{Name: "BenchmarkB", NsPerOp: 200},  // 5x faster: never a failure
		{Name: "BenchmarkNew", NsPerOp: 99},
	}}
	lines, regressed := compareReports(baseline, current, 1.25)
	if regressed {
		t.Errorf("regressed = true within tolerance; lines:\n%s", strings.Join(lines, "\n"))
	}
	// One line per baseline entry plus the new-benchmark note.
	if len(lines) != 4 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.Contains(lines[2], "BenchmarkGone") || !strings.Contains(lines[2], "baseline only") {
		t.Errorf("missing baseline-only note: %q", lines[2])
	}
	if !strings.Contains(lines[3], "BenchmarkNew") || !strings.Contains(lines[3], "not in baseline") {
		t.Errorf("missing new-benchmark note: %q", lines[3])
	}

	current.Benchmarks[0].NsPerOp = 1251 // just past 25%
	lines, regressed = compareReports(baseline, current, 1.25)
	if !regressed {
		t.Errorf("25.1%% slowdown not flagged; lines:\n%s", strings.Join(lines, "\n"))
	}
	if !strings.Contains(lines[0], "REGRESSION") {
		t.Errorf("regressed line not labeled: %q", lines[0])
	}
	if strings.Contains(lines[1], "REGRESSION") {
		t.Errorf("faster benchmark labeled as regression: %q", lines[1])
	}
}

func TestCompareReportsZeroBaseline(t *testing.T) {
	// A zero ns/op baseline (hand-edited or truncated file) must not
	// divide into a spurious failure.
	baseline := Report{Benchmarks: []Result{{Name: "BenchmarkZ", NsPerOp: 0}}}
	current := Report{Benchmarks: []Result{{Name: "BenchmarkZ", NsPerOp: 10}}}
	if _, regressed := compareReports(baseline, current, 1.25); regressed {
		t.Error("zero baseline flagged as regression")
	}
}

func TestCompareReportsAllocRegression(t *testing.T) {
	baseline := Report{Benchmarks: []Result{
		{Name: "BenchmarkHot", NsPerOp: 1000, AllocsPerOp: 0},
		{Name: "BenchmarkCold", NsPerOp: 1000, AllocsPerOp: 13},
	}}
	current := Report{Benchmarks: []Result{
		{Name: "BenchmarkHot", NsPerOp: 1000, AllocsPerOp: 1}, // gained an allocation
		{Name: "BenchmarkCold", NsPerOp: 1000, AllocsPerOp: 13},
	}}
	lines, regressed := compareReports(baseline, current, 1.25)
	if !regressed {
		t.Errorf("allocs/op 0 -> 1 not flagged; lines:\n%s", strings.Join(lines, "\n"))
	}
	if !strings.Contains(lines[0], "ALLOC REGRESSION") || !strings.Contains(lines[0], "cmd/lint -escapes") {
		t.Errorf("alloc regression line missing label or static-gate pointer: %q", lines[0])
	}
	if !strings.Contains(lines[0], "0 -> 1 allocs/op") {
		t.Errorf("alloc counts not shown: %q", lines[0])
	}
	if strings.Contains(lines[1], "REGRESSION") {
		t.Errorf("stable allocs labeled as regression: %q", lines[1])
	}

	// Sub-allocation jitter from -count averaging stays inside the
	// +0.5 slack; allocation drops never fail.
	current.Benchmarks[0].AllocsPerOp = 0.4
	current.Benchmarks[1].AllocsPerOp = 5
	if lines, regressed := compareReports(baseline, current, 1.25); regressed {
		t.Errorf("averaging jitter or an allocs/op drop flagged; lines:\n%s", strings.Join(lines, "\n"))
	}
}

// TestCompareAgainstCommittedBaseline exercises the -compare gate
// against the repository's committed BENCH.json: the baseline must
// carry the DP solver benchmarks, compare clean against itself, and
// flag a synthetic DP slowdown (×1.3 ns/op) and a gained allocation
// the way a real regression would surface.
func TestCompareAgainstCommittedBaseline(t *testing.T) {
	blob, err := os.ReadFile("../../BENCH.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	var baseline Report
	if err := json.Unmarshal(blob, &baseline); err != nil {
		t.Fatalf("parsing BENCH.json: %v", err)
	}
	byName := make(map[string]Result, len(baseline.Benchmarks))
	for _, r := range baseline.Benchmarks {
		byName[r.Name] = r
	}
	for _, want := range []string{
		"BenchmarkDPSolve/n=256",
		"BenchmarkDPSolve/n=4096",
		"BenchmarkDPSolve/n=16384",
		"BenchmarkDPSolveScan/n=4096",
		"BenchmarkDPSolveBudget/fast/n=4096/k=8",
		"BenchmarkDPSolveBudget/scan/n=4096/k=8",
		"BenchmarkBatchedScoring/monte-carlo/batched",
		"BenchmarkClusterSim/1M",
		"BenchmarkClusterSimHeap/1M",
		"BenchmarkClusterSweep",
	} {
		if _, ok := byName[want]; !ok {
			t.Errorf("committed BENCH.json missing %s (regenerate with scripts/bench.sh)", want)
		}
	}
	if t.Failed() {
		return
	}
	// The committed fast-path number must document the ≥5× speedup over
	// the retained reference scan at the headline size.
	fast, scan := byName["BenchmarkDPSolve/n=4096"], byName["BenchmarkDPSolveScan/n=4096"]
	if !(fast.NsPerOp > 0) || scan.NsPerOp/fast.NsPerOp < 5 {
		t.Errorf("BENCH.json DP speedup at n=4096 is %.1fx (scan %.0f / fast %.0f ns/op), want >= 5x",
			scan.NsPerOp/fast.NsPerOp, scan.NsPerOp, fast.NsPerOp)
	}
	// The streaming calendar engine must document a ≥4× speedup over
	// the buffered heap baseline at 1M jobs, without gaining
	// allocations — the committed numbers are the scaling contract.
	cal, heap := byName["BenchmarkClusterSim/1M"], byName["BenchmarkClusterSimHeap/1M"]
	if !(cal.NsPerOp > 0) || heap.NsPerOp/cal.NsPerOp < 4 {
		t.Errorf("BENCH.json cluster-sim speedup at 1M jobs is %.1fx (heap %.0f / calendar %.0f ns/op), want >= 4x",
			heap.NsPerOp/cal.NsPerOp, heap.NsPerOp, cal.NsPerOp)
	}
	if cal.AllocsPerOp > heap.AllocsPerOp {
		t.Errorf("streaming engine allocates more than the buffered baseline: %.0f vs %.0f allocs/op",
			cal.AllocsPerOp, heap.AllocsPerOp)
	}

	if _, regressed := compareReports(baseline, baseline, compareTolerance); regressed {
		t.Error("baseline does not compare clean against itself")
	}

	degraded := Report{Benchmarks: make([]Result, len(baseline.Benchmarks))}
	copy(degraded.Benchmarks, baseline.Benchmarks)
	var slowed, fattened string
	for i, r := range degraded.Benchmarks {
		switch r.Name {
		case "BenchmarkDPSolve/n=4096":
			degraded.Benchmarks[i].NsPerOp = r.NsPerOp * 1.3
			slowed = r.Name
		case "BenchmarkDPSolveBudget/fast/n=4096/k=8":
			degraded.Benchmarks[i].AllocsPerOp = r.AllocsPerOp + 1
			fattened = r.Name
		}
	}
	lines, regressed := compareReports(baseline, degraded, compareTolerance)
	if !regressed {
		t.Fatalf("degraded DP entries not flagged; lines:\n%s", strings.Join(lines, "\n"))
	}
	for _, l := range lines {
		if strings.Contains(l, slowed+":") && !strings.Contains(l, "REGRESSION") {
			t.Errorf("%s slowdown not labeled: %q", slowed, l)
		}
		if strings.Contains(l, fattened+":") && !strings.Contains(l, "ALLOC REGRESSION") {
			t.Errorf("%s gained allocation not labeled: %q", fattened, l)
		}
	}
}

func TestStripProcsSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":       "BenchmarkFoo",
		"BenchmarkFoo/bar-16":  "BenchmarkFoo/bar",
		"BenchmarkFoo":         "BenchmarkFoo",
		"BenchmarkFoo/n=100-4": "BenchmarkFoo/n=100",
		"BenchmarkFoo/x-y":     "BenchmarkFoo/x-y",
	}
	for in, want := range cases {
		if got := stripProcsSuffix(in); got != want {
			t.Errorf("stripProcsSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}
