package repro

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/discretize"
	"repro/internal/dist"
	"repro/internal/resources"
	"repro/internal/strategy"
)

// This file exposes the two §7 future-work extensions through the
// public facade: checkpoint/restart policies and elastic
// (processors × duration) requests, plus mixture distributions for
// multi-modal job populations.

// Mixture builds the mixture Σ w_i·D_i of execution-time laws (weights
// are normalized). Useful for multi-modal job populations.
func Mixture(components []Distribution, weights []float64) (Distribution, error) {
	return dist.NewMixture(components, weights)
}

// CheckpointPolicy is a reservation policy whose steps may end with a
// checkpoint; see MakeCheckpointPlan.
type CheckpointPolicy = checkpoint.Policy

// CheckpointStep is one reservation of a CheckpointPolicy.
type CheckpointStep = checkpoint.Step

// CheckpointParams are the snapshot write (C) and restore (R) costs.
type CheckpointParams = checkpoint.Params

// MakeCheckpointPlan computes the optimal checkpoint/restart policy for
// a job distribution: the distribution is discretized (EQUAL-PROBABILITY,
// opts.DiscN points, capped at 150 because the mixed DP is O(n³)) and
// solved exactly. The returned policy's ExpectedCost is with respect to
// the discretized law. Defaults follow Options (DiscN 1000 — here
// capped to 150 — and Epsilon 1e-7).
func MakeCheckpointPlan(m CostModel, d Distribution, p CheckpointParams, opts Options) (CheckpointPolicy, error) {
	if err := m.Validate(); err != nil {
		return CheckpointPolicy{}, err
	}
	opts = opts.withDefaults()
	n := opts.DiscN
	if n > 150 {
		n = 150
	}
	dd, err := discretize.Discretize(d, n, opts.Epsilon, discretize.EqualProbability)
	if err != nil {
		return CheckpointPolicy{}, err
	}
	pol, err := checkpoint.Solve(dd, m, p)
	if err != nil {
		return CheckpointPolicy{}, err
	}
	return pol, nil
}

// ElasticCost prices two-dimensional (processors, duration) requests;
// see OptimizeProcs.
type ElasticCost = resources.JobCost

// ElasticChoice is one fixed-processor-count solution.
type ElasticChoice = resources.Choice

// SpeedupModel maps processor counts to time-per-unit-work.
type SpeedupModel = resources.SpeedupModel

// AmdahlSpeedup returns the Amdahl law with the given serial fraction.
func AmdahlSpeedup(serialFraction float64) (SpeedupModel, error) {
	return resources.NewAmdahl(serialFraction)
}

// PowerLawSpeedup returns σ(p) = p^{-e} for an efficiency exponent e in
// (0, 1].
func PowerLawSpeedup(exponent float64) (SpeedupModel, error) {
	return resources.NewPowerLaw(exponent)
}

// OptimizeProcs solves the elastic-request problem: given the law of
// the job's total work, a two-dimensional cost, a speedup model and the
// admissible processor counts, it returns the cheapest combination of
// processor count and reservation sequence, plus every per-p solution.
// Defaults follow Options (GridM 5000).
func OptimizeProcs(work Distribution, cost ElasticCost, su SpeedupModel, procs []int, opts Options) (ElasticChoice, []ElasticChoice, error) {
	if su == nil {
		return ElasticChoice{}, nil, fmt.Errorf("repro: a speedup model is required")
	}
	opts = opts.withDefaults()
	st := strategy.BruteForce{M: opts.GridM, Mode: strategy.EvalAnalytic, Workers: opts.Workers}
	return resources.Optimize(work, cost, su, procs, st)
}
