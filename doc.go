// Package repro is a Go implementation of "Reservation Strategies for
// Stochastic Jobs" (Aupy, Gainaru, Honoré, Raghavan, Robert, Sun —
// IPDPS 2019): scheduling jobs whose execution time is a random sample
// of a known probability distribution on a reservation-based platform,
// where a reservation of length t1 for a job of duration t costs
// α·t1 + β·min(t1, t) + γ and failed (too short) reservations must be
// paid and retried with longer ones.
//
// The root package is a small facade over the full library: build a
// distribution (nine classical laws, empirical traces, LogNormal
// fitting), pick a cost model (AWS Reserved-Instance, HPC
// queue-wait/NeuroHPC, or custom), choose a strategy by name, and get
// back the reservation sequence together with its exact (Eq. 4)
// expected cost. The underlying packages expose every building block:
//
//   - internal/core — cost model, expected cost, optimal-sequence
//     recurrence (Theorem 3), bounds (Theorem 2), convex costs
//     (Appendix C);
//   - internal/strategy — BRUTE-FORCE, discretization + dynamic
//     programming, and the standard-measure heuristics of §4.3;
//   - internal/dp — the optimal O(n²) dynamic program for discrete
//     distributions (Theorem 5);
//   - internal/dist, internal/specfun, internal/quad — the probability
//     substrate built from scratch on the standard library;
//   - internal/simulate, internal/platform — the Monte-Carlo engine and
//     platform replay simulator;
//   - internal/experiments — regenerators for every table and figure of
//     the paper's evaluation.
package repro
